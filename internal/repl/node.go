package repl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nztm/internal/kv"
	"nztm/internal/metrics"
	"nztm/internal/server"
	"nztm/internal/tm"
	"nztm/internal/trace"
	"nztm/internal/wal"
)

// Role is a node's current station in the replication topology.
type Role int

// Roles.
const (
	RoleFollower Role = iota
	RolePrimary
)

func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "follower"
}

// Ack policies: how many followers must apply a frame before the
// primary acknowledges the commit that produced it.
const (
	// AckNone disables the commit gate: local durability only. A
	// failover can lose acknowledged writes the followers had not
	// applied yet.
	AckNone = "none"
	// AckOne requires one follower (the default). Combined with the
	// most-caught-up promotion rule this keeps every acknowledged write
	// across a primary crash.
	AckOne = "one"
	// AckMajority requires enough followers that the primary plus its
	// ackers form a strict majority of the cluster.
	AckMajority = "majority"
)

// Config configures a replication node.
type Config struct {
	// NodeID identifies this node in the cluster (unique, ≥ 0; breaks
	// election ties — lower wins).
	NodeID int
	// KVAddr is the advertised client (KV protocol) address.
	KVAddr string
	// ReplAddr is the replication listen address (subscriptions, acks,
	// election polls).
	ReplAddr string
	// Advertise, when non-empty, overrides the replication address told
	// to peers (e.g. when ReplAddr binds a wildcard or :0).
	Advertise string
	// Peers lists every OTHER node's replication address (for election
	// quorum and discovery).
	Peers []string
	// PrimaryFrom, when non-empty, starts this node as a follower of
	// the primary at that replication address. Empty starts it as the
	// primary.
	PrimaryFrom string
	// AckPolicy is AckNone, AckOne (default), or AckMajority.
	AckPolicy string
	// AckTimeout bounds a commit-gate wait (default 3s); on expiry the
	// request fails with its outcome unknown.
	AckTimeout time.Duration
	// HeartbeatEvery is the primary's lease-renewal period (default
	// 50ms).
	HeartbeatEvery time.Duration
	// LeaseTimeout is how long a follower waits without a heartbeat
	// before calling an election (default 5 × HeartbeatEvery).
	LeaseTimeout time.Duration
	// MaxReadWait bounds how long a bounded-staleness read may block
	// waiting for the replica to catch up before StatusLagging (default
	// 1s).
	MaxReadWait time.Duration
	// NewThread mints TM thread contexts for the apply path and for
	// snapshot serving (kv.Backend.NewThread fits). Required.
	NewThread func() *tm.Thread
	// Dial, when non-nil, replaces net.DialTimeout for every outbound
	// replication connection (subscriptions, election polls, stepdown
	// probes). The partition fault plane injects here
	// (fault.Partitions.Dial fits).
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// Recorder, when non-nil, receives replication trace events —
	// typically FlightRecorder.ForSource(trace.ReplSource).
	Recorder *trace.Recorder
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Node is one replication participant: a primary streaming its WAL to
// subscribers, or a follower applying the stream, serving
// bounded-staleness reads, and standing for election when the lease
// lapses. Wire CheckRequest into server.Config.CheckRequest and (for
// semi-synchronous acks) the node installs the store's commit gate
// itself at Start.
type Node struct {
	cfg     Config
	store   *kv.Store
	log     *wal.Log
	stats   Stats
	rec     *trace.Recorder
	ackNeed int // followers required per ack (0 = gate off)

	applyTh *tm.Thread // follower apply path's registry slot

	ln        net.Listener
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// gateWait distributes commitGate wall time (including instant
	// passes), the repl_gate slice of the commit pipeline.
	gateWait metrics.Histogram

	mu         sync.Mutex
	waitCh     chan struct{} // closed + replaced on any state change
	epoch      uint64
	role       Role
	primaryKV  string // current primary's client address ("" unknown)
	primaryRpl string // current primary's replication address
	needResync bool
	stopped    bool
	leaseStart time.Time // when this node last became primary (lease grace)
	subs       map[*subState]struct{}
	ackLat     map[int]*metrics.Histogram // per-follower ship→ack latency, by node id

	// Follower staleness accounting.
	lastHBTotal uint64    // primary's stable total at the last heartbeat
	lastHBAt    time.Time // when that heartbeat arrived
	freshAsOf   time.Time // newest heartbeat time whose total we have applied
}

// subState is the primary's view of one subscribed follower.
type subState struct {
	nodeID      int
	remote      string
	ackedVec    []uint64
	ackedTotal  uint64
	lastAck     time.Time
	behindSince time.Time // zero while caught up
	// pending rings the stream totals of recently shipped batches with
	// their ship time (guarded by n.mu, bounded — see sendFrames), so an
	// ack covering a total yields that batch's round-trip latency.
	pending []ackMark
}

// ackMark is one shipped batch awaiting acknowledgement.
type ackMark struct {
	total uint64 // follower's applied total once this batch lands
	at    uint64 // trace.Now() at ship time
}

// maxPendingAcks bounds each follower's ship-time ring; a follower so
// far behind that the ring fills simply loses latency samples for the
// overflowed batches.
const maxPendingAcks = 128

// epochFile is the fencing epoch's persistence file inside the data dir.
const epochFile = "EPOCH"

// markerFile is created when a node becomes primary and removed only
// after it has completed a full resync as a follower. Its presence at
// follower startup means this node's WAL tail may have diverged from
// the cluster's history (it was a primary once and never proved
// otherwise), so the node must bootstrap from snapshots rather than
// resume the stream on top of a possibly-sibling branch.
const markerFile = "PRIMARY"

// Start brings the node up: loads the persisted epoch, opens the
// replication listener, and starts the role loop (primary duties or the
// follow/elect loop). store must be durable (it has a WAL — the log is
// the stream).
func Start(store *kv.Store, cfg Config) (*Node, error) {
	log := store.WAL()
	if log == nil {
		return nil, errors.New("repl: store has no WAL (replication streams the log)")
	}
	if cfg.NewThread == nil {
		return nil, errors.New("repl: Config.NewThread is required")
	}
	if cfg.AckPolicy == "" {
		cfg.AckPolicy = AckOne
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 3 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 50 * time.Millisecond
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 5 * cfg.HeartbeatEvery
	}
	if cfg.MaxReadWait <= 0 {
		cfg.MaxReadWait = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Dial == nil {
		cfg.Dial = net.DialTimeout
	}
	var need int
	switch cfg.AckPolicy {
	case AckNone:
		need = 0
	case AckOne:
		need = 1
	case AckMajority:
		need = (len(cfg.Peers) + 1) / 2
	default:
		return nil, fmt.Errorf("repl: unknown ack policy %q (have none, one, majority)", cfg.AckPolicy)
	}

	n := &Node{
		cfg:     cfg,
		store:   store,
		log:     log,
		rec:     cfg.Recorder,
		ackNeed: need,
		stop:    make(chan struct{}),
		waitCh:  make(chan struct{}),
		subs:    make(map[*subState]struct{}),
		ackLat:  make(map[int]*metrics.Histogram),
		applyTh: cfg.NewThread(),
	}
	epoch, err := n.loadEpoch()
	if err != nil {
		n.applyTh.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.ReplAddr)
	if err != nil {
		n.applyTh.Close()
		return nil, err
	}
	n.ln = ln
	if cfg.Advertise == "" {
		n.cfg.Advertise = ln.Addr().String()
	}

	if cfg.PrimaryFrom == "" {
		// Each primary term gets a fresh epoch, so a restarted primary's
		// stream is distinguishable from its previous life's.
		n.epoch = epoch + 1
		n.role = RolePrimary
		n.leaseStart = time.Now()
		n.primaryKV, n.primaryRpl = n.cfg.KVAddr, n.cfg.Advertise
		if err := n.setMarker(); err != nil {
			ln.Close()
			n.applyTh.Close()
			return nil, err
		}
		if err := n.persistEpoch(n.epoch); err != nil {
			ln.Close()
			n.applyTh.Close()
			return nil, err
		}
		n.stats.IsPrimary.Store(1)
	} else {
		n.epoch = epoch
		n.role = RoleFollower
		n.primaryRpl = cfg.PrimaryFrom
		if _, err := os.Stat(filepath.Join(log.Dir(), markerFile)); err == nil {
			// This node was a primary in a previous life and never resynced:
			// its log may hold a diverged tail. Bootstrap from snapshots.
			n.needResync = true
		}
	}
	n.stats.Epoch.Store(n.epoch)
	if n.ackNeed > 0 {
		store.SetCommitGate(n.commitGate)
	}

	n.wg.Add(2)
	go n.acceptLoop()
	go n.run()
	n.cfg.Logf("repl: node %d up: role=%s epoch=%d advertise=%s peers=%v",
		cfg.NodeID, n.role, n.epoch, n.cfg.Advertise, cfg.Peers)
	return n, nil
}

// Close stops the node: listener, loops, gate (released), threads.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.mu.Lock()
		n.stopped = true
		n.broadcastLocked()
		n.mu.Unlock()
		close(n.stop)
		n.ln.Close()
		n.store.SetCommitGate(nil)
		n.wg.Wait()
		n.applyTh.Close()
	})
	return nil
}

// ReplAddr returns the advertised replication address.
func (n *Node) ReplAddr() string { return n.cfg.Advertise }

// Stats returns the node's counter block.
func (n *Node) Stats() *Stats { return &n.stats }

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Epoch returns the node's current fencing epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// PrimaryKVAddr returns the current primary's client address ("" when
// unknown).
func (n *Node) PrimaryKVAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primaryKV
}

// loadEpoch reads the persisted epoch (0 when absent).
func (n *Node) loadEpoch() (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(n.log.Dir(), epochFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: corrupt %s file: %w", epochFile, err)
	}
	return v, nil
}

// setMarker durably records that this node is (or has been) a primary.
func (n *Node) setMarker() error {
	path := filepath.Join(n.log.Dir(), markerFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// clearResync marks the node's state as a proven prefix of the
// primary's history again: a full snapshot resync completed, so the
// diverged-tail marker comes off.
func (n *Node) clearResync() {
	n.mu.Lock()
	n.needResync = false
	n.broadcastLocked()
	n.mu.Unlock()
	if err := os.Remove(filepath.Join(n.log.Dir(), markerFile)); err != nil && !errors.Is(err, os.ErrNotExist) {
		n.cfg.Logf("repl: node %d: remove %s: %v", n.cfg.NodeID, markerFile, err)
	}
}

// persistEpoch durably records the epoch (temp + rename).
func (n *Node) persistEpoch(e uint64) error {
	dir := n.log.Dir()
	tmp, err := os.CreateTemp(dir, "tmp-epoch-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := fmt.Fprintf(tmp, "%d\n", e); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(dir, epochFile))
}

// broadcastLocked wakes every waiter (gate, bounded reads, role loop).
// Callers hold n.mu.
func (n *Node) broadcastLocked() {
	close(n.waitCh)
	n.waitCh = make(chan struct{})
}

// adoptEpochLocked raises the local epoch to e (persisting it) and, if
// this node was the primary, steps it down — it has been deposed.
// Callers hold n.mu. Reports whether anything changed.
func (n *Node) adoptEpochLocked(e uint64, primaryKV, primaryRpl string) bool {
	if e <= n.epoch && primaryRpl == "" {
		return false
	}
	changed := false
	if e > n.epoch {
		n.epoch = e
		n.stats.Epoch.Store(e)
		if err := n.persistEpoch(e); err != nil {
			n.cfg.Logf("repl: node %d: persist epoch %d: %v", n.cfg.NodeID, e, err)
		}
		if n.role == RolePrimary {
			n.role = RoleFollower
			n.needResync = true // our un-replicated tail may diverge: wipe and re-fetch
			n.stats.IsPrimary.Store(0)
			n.stats.Depositions.Add(1)
			n.primaryKV, n.primaryRpl = "", ""
			n.cfg.Logf("repl: node %d DEPOSED at epoch %d", n.cfg.NodeID, e)
		}
		changed = true
	}
	if primaryRpl != "" && primaryRpl != n.cfg.Advertise {
		if n.primaryRpl != primaryRpl || n.primaryKV != primaryKV {
			n.primaryKV, n.primaryRpl = primaryKV, primaryRpl
			changed = true
		}
	}
	if changed {
		n.broadcastLocked()
	}
	return changed
}

// promote makes this node the primary at epoch e.
func (n *Node) promote(e uint64) {
	n.mu.Lock()
	if n.stopped || e <= n.epoch && n.role == RolePrimary {
		n.mu.Unlock()
		return
	}
	if err := n.setMarker(); err != nil {
		n.cfg.Logf("repl: node %d: persist %s marker: %v", n.cfg.NodeID, markerFile, err)
	}
	n.epoch = e
	n.role = RolePrimary
	n.leaseStart = time.Now()
	n.primaryKV, n.primaryRpl = n.cfg.KVAddr, n.cfg.Advertise
	n.needResync = false
	if err := n.persistEpoch(e); err != nil {
		n.cfg.Logf("repl: node %d: persist epoch %d: %v", n.cfg.NodeID, e, err)
	}
	n.stats.Epoch.Store(e)
	n.stats.IsPrimary.Store(1)
	n.stats.Promotions.Add(1)
	n.stats.LagFrames.Store(0)
	n.stats.LagMs.Store(0)
	total := n.appliedTotalLocked()
	n.broadcastLocked()
	n.mu.Unlock()
	n.rec.Record(tm.Monotime(), trace.KindReplPromote, 0, e, total)
	n.cfg.Logf("repl: node %d PROMOTED: epoch=%d applied_total=%d", n.cfg.NodeID, e, total)
}

// appliedTotalLocked sums the store's applied vector. (The store read
// takes no node lock; "Locked" marks the call sites' convention.)
func (n *Node) appliedTotalLocked() uint64 {
	var t uint64
	for _, v := range n.store.AppliedVector() {
		t += v
	}
	return t
}

// AppliedTotal returns the node's applied LSN total.
func (n *Node) AppliedTotal() uint64 {
	return n.appliedTotalLocked()
}

// run is the role loop: follow (subscribe or elect) while a follower,
// park while primary.
func (n *Node) run() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			return
		}
		role := n.role
		ch := n.waitCh
		n.mu.Unlock()
		if role == RolePrimary {
			// Primary duties live in the accept loop; park until deposed,
			// waking periodically to check for follower silence. A primary
			// nobody dials cannot otherwise learn it has been deposed
			// across a partition (the zombie-primary gap): it keeps
			// fencing-rejecting nothing and believing its own lease. The
			// probe polls peers after a follower-silent lease interval and
			// adopts any higher epoch it hears — stepping itself down.
			select {
			case <-ch:
			case <-time.After(n.cfg.LeaseTimeout):
				n.primaryProbe()
			case <-n.stop:
				return
			}
			continue
		}
		n.followOnce()
		// Pace reconnect/election attempts; stagger by node id so two
		// followers don't poll in lockstep forever.
		d := 15*time.Millisecond + time.Duration(n.cfg.NodeID%7)*5*time.Millisecond
		select {
		case <-time.After(d):
		case <-n.stop:
			return
		}
	}
}

// primaryProbe is the primary's deposition detector. When no follower
// has acked for over a lease interval (all silent, or none subscribed),
// the primary polls its peers; a higher epoch in any answer means the
// rest of the cluster elected past us while a partition hid it — adopt
// it (which deposes this node) instead of zombie-acking writes forever.
func (n *Node) primaryProbe() {
	if len(n.cfg.Peers) == 0 {
		return // single-node cluster: there is nobody to be deposed by
	}
	n.mu.Lock()
	if n.stopped || n.role != RolePrimary {
		n.mu.Unlock()
		return
	}
	epoch := n.epoch
	silent := n.followerSilentLocked()
	n.mu.Unlock()
	if !silent {
		return // followers are talking to us; the lease is honest
	}
	n.stats.StepdownProbes.Add(1)

	results := make([]pollResult, len(n.cfg.Peers))
	var wg sync.WaitGroup
	for i, addr := range n.cfg.Peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			resp, err := n.pollPeer(addr, &Message{
				Type: MsgPoll, Epoch: epoch, NodeID: uint16(n.cfg.NodeID),
			})
			if err != nil {
				return
			}
			results[i] = pollResult{ok: true, resp: resp}
		}(i, addr)
	}
	wg.Wait()

	maxEpoch := epoch
	liveKV, liveRpl := "", ""
	for _, r := range results {
		if !r.ok {
			continue
		}
		if r.resp.Epoch > maxEpoch {
			maxEpoch = r.resp.Epoch
			liveKV, liveRpl = "", ""
		}
		if r.resp.PrimaryLive && r.resp.Epoch == maxEpoch && r.resp.ReplAddr != n.cfg.Advertise {
			liveKV, liveRpl = r.resp.KVAddr, r.resp.ReplAddr
		}
	}
	if maxEpoch > epoch {
		n.cfg.Logf("repl: node %d: stepdown probe found epoch %d > %d", n.cfg.NodeID, maxEpoch, epoch)
		n.mu.Lock()
		n.adoptEpochLocked(maxEpoch, liveKV, liveRpl)
		n.mu.Unlock()
	}
}

// followerSilentLocked reports whether the primary's lease has lapsed:
// no follower ack — and no promotion — within LeaseTimeout. Followers
// ack every heartbeat, so a whole lease interval of silence means real
// isolation (or a dead quorum), never idleness. Callers hold n.mu.
func (n *Node) followerSilentLocked() bool {
	newest := n.leaseStart
	for sub := range n.subs {
		if sub.lastAck.After(newest) {
			newest = sub.lastAck
		}
	}
	return newest.IsZero() || time.Since(newest) >= n.cfg.LeaseTimeout
}

// followOnce makes one attempt at being a follower: subscribe to the
// known primary if there is one, otherwise poll the cluster (adopting a
// discovered primary or promoting if this node should lead).
func (n *Node) followOnce() {
	n.mu.Lock()
	addr := n.primaryRpl
	n.mu.Unlock()
	if addr != "" && addr != n.cfg.Advertise {
		err := n.subscribe(addr)
		if err != nil {
			n.cfg.Logf("repl: node %d: stream from %s ended: %v", n.cfg.NodeID, addr, err)
			// The stream died; forget this primary unless something newer
			// already replaced it.
			n.mu.Lock()
			if n.primaryRpl == addr {
				n.primaryKV, n.primaryRpl = "", ""
			}
			n.mu.Unlock()
		}
		return
	}
	n.runElection()
}

// CheckRequest is the server's replication interposition (wire it into
// server.Config.CheckRequest). It runs on the connection's reader
// goroutine in the listener plane, before admission to the scheduler
// queue — so a follower read parked here waiting for replica catch-up
// stalls only its own connection, never one of the shared executor-pool
// workers. On the primary everything passes. On a
// follower, writes are redirected (StatusNotPrimary names the primary's
// client address) and reads are served at a bounded-staleness cut:
// un-tokened reads serve immediately from local state; a staleness
// token blocks — up to MaxReadWait — until the applied vector covers
// the token's read-your-writes vector AND the replica has confirmed
// (via a primary heartbeat no older than the lag budget) that its
// applied state was complete at that moment. A lag budget of 0 ms
// therefore forces a post-read-arrival heartbeat: the strictest bound a
// replica can offer. On expiry the read is refused with StatusLagging
// and the client falls back to the primary.
func (n *Node) CheckRequest(ops []kv.Op, st *server.Staleness) (uint8, string) {
	hasWrite := false
	for i := range ops {
		if ops[i].Kind != kv.OpGet {
			hasWrite = true
			break
		}
	}
	start := time.Now()
	deadline := start.Add(n.cfg.MaxReadWait)
	for {
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			return server.StatusShutdown, "replication node closed"
		}
		if n.role == RolePrimary {
			if (hasWrite || st != nil) && len(n.cfg.Peers) > 0 && n.followerSilentLocked() {
				// Zombie-primary fence: a primary that has heard no follower
				// ack for a whole lease interval may already be deposed on
				// the other side of a partition. Acking a write here could be
				// split-brain; serving a tokened read could violate
				// read-your-writes against the new epoch's history. Refuse
				// both (clients fall back to the real primary); untokened
				// reads keep serving local state, like any replica.
				n.mu.Unlock()
				n.stats.LeaseRefusals.Add(1)
				return server.StatusLagging, "primary lease lapsed: no follower ack within the lease interval (partitioned?)"
			}
			n.mu.Unlock()
			return server.StatusOK, ""
		}
		if hasWrite {
			pk := n.primaryKV
			n.mu.Unlock()
			return server.StatusNotPrimary, "primary=" + pk
		}
		if n.needResync {
			// This node's state may hold a diverged tail (it was a primary
			// once); refusing reads until the resync completes keeps even
			// unbounded replica reads inside the shared history.
			ch := n.waitCh
			n.mu.Unlock()
			now := time.Now()
			if !now.Before(deadline) {
				return server.StatusLagging, "replica resyncing after deposition"
			}
			wait := deadline.Sub(now)
			if wait > 25*time.Millisecond {
				wait = 25 * time.Millisecond
			}
			select {
			case <-ch:
			case <-time.After(wait):
			case <-n.stop:
			}
			continue
		}
		if st == nil {
			n.mu.Unlock()
			return server.StatusOK, ""
		}
		fresh := true
		if st.MaxLagMs != server.NoLagBudget {
			budget := time.Duration(st.MaxLagMs) * time.Millisecond
			fresh = !n.freshAsOf.IsZero() && !n.freshAsOf.Before(start.Add(-budget))
		}
		ch := n.waitCh
		lagTotal := n.lastHBTotal
		n.mu.Unlock()

		covered := true
		if len(st.Vector) > 0 {
			applied := n.store.AppliedVector()
			for _, sl := range st.Vector {
				if sl.Shard < 0 || sl.Shard >= len(applied) || applied[sl.Shard] < sl.LSN {
					covered = false
					break
				}
			}
		}
		if covered && fresh {
			return server.StatusOK, ""
		}
		now := time.Now()
		if !now.Before(deadline) {
			return server.StatusLagging, fmt.Sprintf(
				"replica lagging: covered=%v fresh=%v primary_total=%d after %v",
				covered, fresh, lagTotal, now.Sub(start).Round(time.Millisecond))
		}
		wait := deadline.Sub(now)
		if wait > 25*time.Millisecond {
			wait = 25 * time.Millisecond
		}
		select {
		case <-ch:
		case <-time.After(wait):
		case <-n.stop:
		}
	}
}

// commitGate is the store's acknowledgement gate (installed at Start
// for AckOne/AckMajority). Writes on the primary wait until ackNeed
// followers report the commit vector applied; a node that is no longer
// primary fails writes outright (the fencing half of failover safety)
// while letting replica-local reads pass — their staleness contract is
// CheckRequest's job.
func (n *Node) commitGate(vec []wal.ShardLSN, wrote bool) error {
	start := time.Now()
	err := n.gateLoop(vec, wrote)
	n.gateWait.Observe(time.Since(start))
	return err
}

func (n *Node) gateLoop(vec []wal.ShardLSN, wrote bool) error {
	waited := false
	deadline := time.Now().Add(n.cfg.AckTimeout)
	for {
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			return errors.New("repl: node closed")
		}
		if n.role != RolePrimary {
			n.mu.Unlock()
			if wrote {
				return errors.New("repl: not primary (deposed before the write was replicated)")
			}
			return nil
		}
		acked := 0
		for sub := range n.subs {
			if coversSparse(sub.ackedVec, vec) {
				acked++
			}
		}
		ch := n.waitCh
		n.mu.Unlock()
		if acked >= n.ackNeed {
			return nil
		}
		if !waited {
			waited = true
			n.stats.GateWaits.Add(1)
		}
		now := time.Now()
		if !now.Before(deadline) {
			n.stats.GateTimeouts.Add(1)
			return fmt.Errorf("repl: %d/%d follower acks after %v", acked, n.ackNeed, n.cfg.AckTimeout)
		}
		wait := deadline.Sub(now)
		if wait > 25*time.Millisecond {
			wait = 25 * time.Millisecond
		}
		select {
		case <-ch:
		case <-time.After(wait):
		case <-n.stop:
		}
	}
}

// coversSparse reports whether the dense applied vector covers every
// entry of the sparse commit vector.
func coversSparse(applied []uint64, vec []wal.ShardLSN) bool {
	for _, sl := range vec {
		if sl.Shard < 0 || sl.Shard >= len(applied) || applied[sl.Shard] < sl.LSN {
			return false
		}
	}
	return true
}

// WriteStatsz appends the replication section to /statsz: the counter
// block, the node's role line, and per-follower lag (primary only).
func (n *Node) WriteStatsz(w io.Writer) {
	n.stats.WriteStatsz(w)
	n.mu.Lock()
	role := n.role
	epoch := n.epoch
	pk := n.primaryKV
	type followerLag struct {
		id         int
		ackedTotal uint64
		lagLSN     uint64
		lagFor     time.Duration
		sinceAck   time.Duration
		ackLat     string
	}
	var fl []followerLag
	if role == RolePrimary {
		var stableTotal uint64
		for _, v := range n.log.StableVector() {
			stableTotal += v
		}
		now := time.Now()
		for sub := range n.subs {
			l := followerLag{id: sub.nodeID, ackedTotal: sub.ackedTotal}
			if stableTotal > sub.ackedTotal {
				l.lagLSN = stableTotal - sub.ackedTotal
			}
			if !sub.behindSince.IsZero() {
				l.lagFor = now.Sub(sub.behindSince).Round(time.Millisecond)
			}
			if !sub.lastAck.IsZero() {
				l.sinceAck = now.Sub(sub.lastAck).Round(time.Millisecond)
			}
			if h := n.ackLat[sub.nodeID]; h != nil {
				l.ackLat = h.Summary()
			}
			fl = append(fl, l)
		}
	}
	n.mu.Unlock()
	fmt.Fprintf(w, "repl node: id=%d role=%s epoch=%d primary=%s applied_total=%d\n",
		n.cfg.NodeID, role, epoch, pk, n.AppliedTotal())
	if n.gateWait.Count() > 0 {
		fmt.Fprintf(w, "repl gate wait: %s\n", n.gateWait.Summary())
	}
	sort.Slice(fl, func(i, j int) bool { return fl[i].id < fl[j].id })
	for _, l := range fl {
		fmt.Fprintf(w, "repl follower %d: acked_total=%d lag_lsn=%d lag_for=%v since_ack=%v ack_latency=[%s]\n",
			l.id, l.ackedTotal, l.lagLSN, l.lagFor, l.sinceAck, l.ackLat)
	}
}

// WriteMetricsz appends the replication Prometheus series: the counter
// block, the commit-gate wait histogram, and — on the primary — the
// per-follower lag gauges and ship→ack latency histograms.
func (n *Node) WriteMetricsz(w io.Writer) {
	n.stats.WriteMetricsz(w)
	n.gateWait.WriteProm(w, "nztm_repl_gate_wait_seconds")
	type followerRow struct {
		id    int
		lag   uint64
		lagMs int64
		h     *metrics.Histogram
	}
	var rows []followerRow
	n.mu.Lock()
	if n.role == RolePrimary {
		var stableTotal uint64
		for _, v := range n.log.StableVector() {
			stableTotal += v
		}
		now := time.Now()
		for sub := range n.subs {
			r := followerRow{id: sub.nodeID, h: n.ackLat[sub.nodeID]}
			if stableTotal > sub.ackedTotal {
				r.lag = stableTotal - sub.ackedTotal
			}
			if !sub.behindSince.IsZero() {
				r.lagMs = now.Sub(sub.behindSince).Milliseconds()
			}
			rows = append(rows, r)
		}
	}
	n.mu.Unlock()
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	metrics.Head(w, "nztm_repl_follower_lag_lsn", "gauge", "stable LSNs the follower has not acked")
	for _, r := range rows {
		metrics.Gauge(w, "nztm_repl_follower_lag_lsn", float64(r.lag), "follower", strconv.Itoa(r.id))
	}
	metrics.Head(w, "nztm_repl_follower_lag_ms", "gauge", "how long the follower has been behind")
	for _, r := range rows {
		metrics.Gauge(w, "nztm_repl_follower_lag_ms", float64(r.lagMs), "follower", strconv.Itoa(r.id))
	}
	hasAck := false
	for _, r := range rows {
		if r.h != nil {
			hasAck = true
		}
	}
	if !hasAck {
		return
	}
	metrics.Head(w, "nztm_repl_follower_ack_seconds", "histogram", "batch ship to ack round-trip per follower")
	for _, r := range rows {
		if r.h != nil {
			r.h.WriteHistSamples(w, "nztm_repl_follower_ack_seconds", 1e-9, "follower", strconv.Itoa(r.id))
		}
	}
	metrics.Head(w, "nztm_repl_follower_ack_seconds_quantile", "gauge", "ship to ack p50/p95/p99 upper bounds per follower")
	for _, r := range rows {
		if r.h != nil {
			r.h.WriteQuantileSamples(w, "nztm_repl_follower_ack_seconds", 1e-9, "follower", strconv.Itoa(r.id))
		}
	}
}
