package tmtest

import (
	"sync"
	"testing"

	"nztm/internal/tm"
)

// RunChurn executes the registry-churn conformance test: goroutines
// continuously acquire registry slots, transact, and release the slots
// again, so every slot ID is recycled through many tenants while other
// tenants are mid-transaction. This is the dynamic-thread contract the
// static Config.Threads world never exercised — a recycled slot inherits
// its predecessor's reader-table entries, pooled descriptors, and owner
// words, and the generation protocol must keep those from cross-talking.
// Run it under -race: the suite deliberately overcommits goroutines beyond
// the slot capacity so Acquire blocking and slot handoff stay hot.
//
// The factory is built with threads = the registry's capacity, so systems
// with fixed per-thread tables (DSTM) size them to cover every slot.
func RunChurn(t *testing.T, f Factory) {
	t.Helper()
	t.Run("CounterConservation", func(t *testing.T) { churnCounter(t, f) })
	t.Run("BankInvariant", func(t *testing.T) { churnBank(t, f) })
}

// newChurnSystem builds a registry-backed system: the registry shares the
// system's world so registry-minted threads allocate from it.
func newChurnSystem(f Factory, slots int) (tm.System, *tm.Registry) {
	world := tm.NewRealWorld()
	reg := tm.NewRegistryWorld(slots, world)
	return f(world, reg.Max()), reg
}

// churnCounter: every tenancy increments a shared counter a few times; the
// final count proves no increment was lost or duplicated across slot
// recycling (a stale descriptor writing through a recycled slot would break
// conservation).
func churnCounter(t *testing.T, f Factory) {
	const slots, goroutines, tenancies, perTenancy = 6, 16, 25, 6
	s, reg := newChurnSystem(f, slots)
	o := s.NewObject(tm.NewInts(1))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < tenancies; r++ {
				th := reg.NewThread()
				for i := 0; i < perTenancy; i++ {
					if err := s.Atomic(th, func(tx tm.Tx) error {
						tx.Update(o, func(d tm.Data) { d.(*tm.Ints).V[0]++ })
						return nil
					}); err != nil {
						t.Error(err)
						break
					}
				}
				th.Close()
			}
		}()
	}
	wg.Wait()
	th := reg.NewThread()
	defer th.Close()
	if got, want := read0(t, s, th, o), int64(goroutines*tenancies*perTenancy); got != want {
		t.Errorf("%s: counter = %d, want %d (lost or duplicated under slot churn)", s.Name(), got, want)
	}
	if reg.Active() != 1 {
		t.Errorf("registry active = %d after churn, want 1 (the checker)", reg.Active())
	}
	if h := reg.High(); h > slots {
		t.Errorf("high-water %d beyond capacity %d", h, slots)
	}
}

// churnBank: transfers and full-sum audits race across recycled slots; every
// audit — including audits by brand-new tenants of freshly recycled slots —
// must see the conserved total.
func churnBank(t *testing.T, f Factory) {
	const slots, goroutines, tenancies, accounts, initial = 6, 12, 20, 8, 1000
	s, reg := newChurnSystem(f, slots)
	objs := make([]tm.Object, accounts)
	for i := range objs {
		d := tm.NewInts(1)
		d.V[0] = initial
		objs[i] = s.NewObject(d)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < tenancies; r++ {
				th := reg.NewThread()
				if (id+r)%3 == 0 {
					var sum int64
					if err := s.Atomic(th, func(tx tm.Tx) error {
						sum = 0
						for _, o := range objs {
							sum += tx.Read(o).(*tm.Ints).V[0]
						}
						return nil
					}); err != nil {
						t.Error(err)
					} else if sum != accounts*initial {
						t.Errorf("%s: audit total %d, want %d", s.Name(), sum, accounts*initial)
					}
				} else {
					from := (id + r) % accounts
					to := (id + 3*r + 1) % accounts
					if from != to {
						amt := int64(r%9 + 1)
						if err := s.Atomic(th, func(tx tm.Tx) error {
							tx.Update(objs[from], func(d tm.Data) { d.(*tm.Ints).V[0] -= amt })
							tx.Update(objs[to], func(d tm.Data) { d.(*tm.Ints).V[0] += amt })
							return nil
						}); err != nil {
							t.Error(err)
						}
					}
				}
				th.Close()
			}
		}(g)
	}
	wg.Wait()
	th := reg.NewThread()
	defer th.Close()
	var total int64
	for _, o := range objs {
		total += read0(t, s, th, o)
	}
	if total != accounts*initial {
		t.Errorf("%s: total = %d, want %d", s.Name(), total, accounts*initial)
	}
}
