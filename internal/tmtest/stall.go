package tmtest

import (
	"sync"
	"testing"
	"time"

	"nztm/internal/tm"
)

// RunStall exercises the paper's nonblocking property (§3) under real
// concurrency: one thread opens an object for writing and then stalls
// "forever" (from the other threads' perspective — it blocks on a channel
// mid-transaction, holding its ownership), and the remaining threads must
// keep committing transactions on that same object. Blocking designs wedge
// here: the suite fails after a generous watchdog rather than hanging.
//
// Only nonblocking systems (NZSTM, SCSS, DSTM) may be wired to this
// harness. BZSTM and the DSTM2 shadow factory wait forever for abort
// acknowledgements, and the global-lock and LogTM-SE baselines block by
// design; they must not call it. Simulator stall injection (RunSim with stallProb > 0) covers the
// same property under adversarial interleaving; this harness proves it as
// an ordinary Go library, with a truly unresponsive OS thread.
func RunStall(t *testing.T, f Factory) {
	t.Helper()
	const workers, each = 4, 150
	world := tm.NewRealWorld()
	s := f(world, workers+1)
	o := s.NewObject(tm.NewInts(1))

	stalled := make(chan struct{})  // closed once the staller holds the object
	release := make(chan struct{})  // closed when the others are done
	stallerDone := make(chan error, 1)
	go func() {
		th := tm.NewThread(workers, tm.NewRealEnv(workers, world))
		first := true
		stallerDone <- s.Atomic(th, func(tx tm.Tx) error {
			// Identity update: acquires write ownership without changing
			// the data, so the final count is exact either way.
			tx.Update(o, func(d tm.Data) { d.(*tm.Ints).V[0] += 0 })
			if first {
				first = false
				close(stalled)
				<-release // stall mid-transaction, ownership held
			}
			return nil
		})
	}()
	<-stalled

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := tm.NewThread(id, tm.NewRealEnv(id, world))
				for j := 0; j < each; j++ {
					if err := s.Atomic(th, func(tx tm.Tx) error {
						tx.Update(o, func(d tm.Data) { d.(*tm.Ints).V[0]++ })
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	}()

	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		close(release)
		t.Fatalf("%s: %d threads made no progress for 2m behind a stalled transaction — nonblocking property violated", s.Name(), workers)
	}
	close(release)
	if err := <-stallerDone; err != nil {
		t.Errorf("%s: stalled transaction finished with error: %v", s.Name(), err)
	}

	th := tm.NewThread(workers, tm.NewRealEnv(workers, world))
	var got int64
	if err := s.Atomic(th, func(tx tm.Tx) error {
		got = tx.Read(o).(*tm.Ints).V[0]
		return nil
	}); err != nil {
		t.Fatalf("%s: final read failed: %v", s.Name(), err)
	}
	if got != workers*each {
		t.Errorf("%s: counter = %d, want %d (lost or duplicated updates around the stall)", s.Name(), got, workers*each)
	}
}
