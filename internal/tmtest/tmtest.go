// Package tmtest provides a reusable conformance suite that every TM system
// in this repository must pass: basic commit/abort semantics, isolation,
// consistency of concurrent readers, and conservation invariants under
// contention.
//
// The suite runs in two harnesses:
//
//   - Run: ordinary Go concurrency (goroutines, tm.RealEnv) — exercises the
//     systems as a real concurrent library, including under -race.
//   - RunSim: virtual threads on the simulated CMP (machine.Proc env) —
//     exercises the systems under adversarial interleaving at every memory
//     access, plus injected stalls that make transactions unresponsive.
//
// Hardware TM models (htm, logtm, hybrid's hardware path) only execute on
// the simulated machine, mirroring the paper: the Rock processor that would
// run them was never shipped.
package tmtest

import (
	"errors"
	"sync"
	"testing"

	"nztm/internal/machine"
	"nztm/internal/tm"
)

// Factory builds a fresh System able to run `threads` concurrent threads
// over the given world.
type Factory func(world tm.World, threads int) tm.System

// harness abstracts how parallel sections execute.
type harness interface {
	// system returns the system under test, able to run n threads.
	system(n int) tm.System
	// parallel runs body once per thread ID in [0, n).
	parallel(n int, body func(th *tm.Thread))
}

type realHarness struct{ f Factory }

func (h *realHarness) system(n int) tm.System { return h.f(tm.NewRealWorld(), n) }

func (h *realHarness) parallel(n int, body func(th *tm.Thread)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(tm.NewThread(id, tm.NewRealEnv(id, tm.NewRealWorld())))
		}(i)
	}
	wg.Wait()
}

type simHarness struct {
	f     Factory
	cfg   machine.Config
	m     *machine.Machine
	limit int
}

func (h *simHarness) system(n int) tm.System {
	cfg := h.cfg
	cfg.Cores = h.limit
	h.m = machine.New(cfg)
	return h.f(h.m, n)
}

func (h *simHarness) parallel(n int, body func(th *tm.Thread)) {
	h.m.Run(n, func(p *machine.Proc) {
		body(tm.NewThread(p.ID(), p))
	})
}

// Run executes the full conformance suite with ordinary Go concurrency.
func Run(t *testing.T, f Factory) {
	t.Helper()
	runAll(t, &realHarness{f: f})
}

// RunSim executes the suite on a simulated machine. A nonzero stallProb
// additionally injects random stalls (modelling preemptions/page faults) so
// unresponsive-transaction paths get exercised.
func RunSim(t *testing.T, f Factory, stallProb float64) {
	t.Helper()
	cfg := machine.DefaultConfig(8)
	cfg.MaxCycles = 40_000_000_000
	cfg.StallProb = stallProb
	cfg.StallCycles = 200_000
	runAll(t, &simHarness{f: f, cfg: cfg, limit: 8})
}

func runAll(t *testing.T, h harness) {
	t.Run("CommitSingleThread", func(t *testing.T) { commitSingleThread(t, h) })
	t.Run("ErrorDiscardsEffects", func(t *testing.T) { errorDiscards(t, h) })
	t.Run("ReadYourWrites", func(t *testing.T) { readYourWrites(t, h) })
	t.Run("ConcurrentCounter", func(t *testing.T) { concurrentCounter(t, h) })
	t.Run("BankInvariant", func(t *testing.T) { bankInvariant(t, h) })
	t.Run("OracleSequence", func(t *testing.T) { oracleSequence(t, h) })
}

func read0(t *testing.T, s tm.System, th *tm.Thread, o tm.Object) int64 {
	t.Helper()
	var v int64
	if err := s.Atomic(th, func(tx tm.Tx) error {
		v = tx.Read(o).(*tm.Ints).V[0]
		return nil
	}); err != nil {
		t.Fatalf("%s: read failed: %v", s.Name(), err)
	}
	return v
}

func commitSingleThread(t *testing.T, h harness) {
	s := h.system(1)
	o := s.NewObject(tm.NewInts(1))
	h.parallel(1, func(th *tm.Thread) {
		for i := 0; i < 64; i++ {
			if err := s.Atomic(th, func(tx tm.Tx) error {
				tx.Update(o, func(d tm.Data) { d.(*tm.Ints).V[0]++ })
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
		if got := read0(t, s, th, o); got != 64 {
			t.Errorf("%s: counter = %d, want 64", s.Name(), got)
		}
	})
}

func errorDiscards(t *testing.T, h harness) {
	s := h.system(1)
	o := s.NewObject(tm.NewInts(1))
	boom := errors.New("boom")
	h.parallel(1, func(th *tm.Thread) {
		if err := s.Atomic(th, func(tx tm.Tx) error {
			tx.Update(o, func(d tm.Data) { d.(*tm.Ints).V[0] = 99 })
			return boom
		}); err != boom {
			t.Errorf("err = %v, want boom", err)
		}
		if got := read0(t, s, th, o); got != 0 {
			t.Errorf("%s: aborted write leaked: %d", s.Name(), got)
		}
	})
}

func readYourWrites(t *testing.T, h harness) {
	s := h.system(1)
	o := s.NewObject(tm.NewInts(1))
	h.parallel(1, func(th *tm.Thread) {
		if err := s.Atomic(th, func(tx tm.Tx) error {
			tx.Update(o, func(d tm.Data) { d.(*tm.Ints).V[0] = 7 })
			if got := tx.Read(o).(*tm.Ints).V[0]; got != 7 {
				t.Errorf("%s: read-your-write = %d, want 7", s.Name(), got)
			}
			tx.Update(o, func(d tm.Data) { d.(*tm.Ints).V[0] *= 3 })
			if got := tx.Read(o).(*tm.Ints).V[0]; got != 21 {
				t.Errorf("%s: second read = %d, want 21", s.Name(), got)
			}
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
}

func concurrentCounter(t *testing.T, h harness) {
	const workers, each = 6, 120
	s := h.system(workers)
	o := s.NewObject(tm.NewInts(1))
	h.parallel(workers, func(th *tm.Thread) {
		for i := 0; i < each; i++ {
			if err := s.Atomic(th, func(tx tm.Tx) error {
				tx.Update(o, func(d tm.Data) { d.(*tm.Ints).V[0]++ })
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	h.parallel(1, func(th *tm.Thread) {
		if got := read0(t, s, th, o); got != workers*each {
			t.Errorf("%s: counter = %d, want %d", s.Name(), got, workers*each)
		}
	})
}

func bankInvariant(t *testing.T, h harness) {
	const accounts, workers, each, initial = 8, 6, 80, 1000
	s := h.system(workers)
	objs := make([]tm.Object, accounts)
	for i := range objs {
		d := tm.NewInts(1)
		d.V[0] = initial
		objs[i] = s.NewObject(d)
	}
	h.parallel(workers, func(th *tm.Thread) {
		id := th.ID
		for i := 0; i < each; i++ {
			if id%3 == 2 {
				var sum int64
				if err := s.Atomic(th, func(tx tm.Tx) error {
					sum = 0
					for _, o := range objs {
						sum += tx.Read(o).(*tm.Ints).V[0]
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if sum != accounts*initial {
					t.Errorf("%s: audit total %d, want %d", s.Name(), sum, accounts*initial)
					return
				}
				continue
			}
			from := (id + i) % accounts
			to := (id + 3*i + 1) % accounts
			if from == to {
				continue
			}
			amt := int64(i%9 + 1)
			if err := s.Atomic(th, func(tx tm.Tx) error {
				tx.Update(objs[from], func(d tm.Data) { d.(*tm.Ints).V[0] -= amt })
				tx.Update(objs[to], func(d tm.Data) { d.(*tm.Ints).V[0] += amt })
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	h.parallel(1, func(th *tm.Thread) {
		var total int64
		for _, o := range objs {
			total += read0(t, s, th, o)
		}
		if total != accounts*initial {
			t.Errorf("%s: total = %d, want %d", s.Name(), total, accounts*initial)
		}
	})
}

func oracleSequence(t *testing.T, h harness) {
	s := h.system(1)
	const regs = 6
	objs := make([]tm.Object, regs)
	oracle := make([]int64, regs)
	for i := range objs {
		objs[i] = s.NewObject(tm.NewInts(1))
	}
	errNope := errors.New("nope")
	h.parallel(1, func(th *tm.Thread) {
		rng := uint64(99)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for step := 0; step < 600; step++ {
			i, j := int(next()%regs), int(next()%regs)
			switch next() % 3 {
			case 0:
				val := int64(next() % 500)
				if err := s.Atomic(th, func(tx tm.Tx) error {
					tx.Update(objs[i], func(d tm.Data) { d.(*tm.Ints).V[0] = val })
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				oracle[i] = val
			case 1:
				if err := s.Atomic(th, func(tx tm.Tx) error {
					a := tx.Read(objs[i]).(*tm.Ints).V[0]
					tx.Update(objs[j], func(d tm.Data) { d.(*tm.Ints).V[0] += a })
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				oracle[j] += oracle[i]
			case 2:
				if err := s.Atomic(th, func(tx tm.Tx) error {
					tx.Update(objs[i], func(d tm.Data) { d.(*tm.Ints).V[0] = -5 })
					tx.Update(objs[j], func(d tm.Data) { d.(*tm.Ints).V[0] = -6 })
					return errNope
				}); err != errNope {
					t.Error(err)
					return
				}
			}
			if got := read0(t, s, th, objs[i]); got != oracle[i] {
				t.Errorf("%s step %d: reg %d = %d, oracle %d", s.Name(), step, i, got, oracle[i])
				return
			}
			if got := read0(t, s, th, objs[j]); got != oracle[j] {
				t.Errorf("%s step %d: reg %d = %d, oracle %d", s.Name(), step, j, got, oracle[j])
				return
			}
		}
	})
}
