// Package mc is a small explicit-state model checker in the spirit of SPIN,
// which the paper used (via Promela models) to gain confidence in NZSTM's
// correctness (§3): "Spin can perform exhaustive searches of all possible
// executions of a given model; applying sanity checks; and finding
// unreachable code, deadlocks, and cycles."
//
// Check performs a breadth-first exhaustive search over all interleavings
// of a model's per-thread atomic steps, verifying a state invariant
// everywhere, a final-state predicate at quiescence, detecting deadlocks
// (non-final states where no thread can step), and reporting action
// coverage (the unreachable-code check). Counterexamples are reported as
// the sequence of actions leading to the bad state.
package mc

import (
	"fmt"
	"sort"
)

// State is a model state. Implementations are value-like: Step functions
// receive a private copy they may mutate and return.
type State interface {
	// Key returns a canonical encoding; states with equal keys are merged.
	Key() string
	// Clone returns a deep copy.
	Clone() State
}

// Action is one named atomic step a thread may take.
type Action struct {
	// Name identifies the action for coverage reporting and traces.
	Name string
	// Next returns the successor state (it owns s and may mutate it).
	Next func(s State) State
}

// Model describes the system to check.
type Model struct {
	Name string
	Init State

	// Enabled returns the atomic actions thread tid can take in state s.
	// An empty result means the thread is blocked (or finished) in s.
	Enabled func(s State, tid int) []Action

	Threads int

	// Invariant is checked in every reachable state; a non-nil error is a
	// violation.
	Invariant func(s State) error

	// Final reports whether a fully-blocked state is an acceptable end
	// state; a blocked non-final state is a deadlock.
	Final func(s State) bool
}

// Result summarises a check.
type Result struct {
	States      int      // distinct states explored
	Transitions int      // transitions taken
	Deadlocks   int      // deadlocked states found
	Covered     []string // action names seen at least once
	Uncovered   []string // action names declared via Coverage but never seen

	// Err is the first violation found (invariant failure or deadlock),
	// with Trace the action sequence reaching it.
	Err   error
	Trace []string
}

// Options tunes a check.
type Options struct {
	MaxStates int // abort the search beyond this many states (0 = 1<<22)

	// Coverage lists action names that are expected to occur in some
	// execution; unreached ones are reported in Result.Uncovered.
	Coverage []string
}

type node struct {
	key    string
	parent *node
	action string
}

// Check exhaustively explores the model.
func Check(m Model, opt Options) Result {
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 22
	}

	res := Result{}
	seen := make(map[string]*node)
	covered := make(map[string]bool)

	initKey := m.Init.Key()
	root := &node{key: initKey}
	seen[initKey] = root

	type qent struct {
		s State
		n *node
	}
	queue := []qent{{s: m.Init.Clone(), n: root}}

	fail := func(n *node, err error) Result {
		res.Err = err
		for at := n; at != nil && at.action != ""; at = at.parent {
			res.Trace = append(res.Trace, at.action)
		}
		// reverse to chronological order
		for i, j := 0, len(res.Trace)-1; i < j; i, j = i+1, j-1 {
			res.Trace[i], res.Trace[j] = res.Trace[j], res.Trace[i]
		}
		res.finishCoverage(covered, opt)
		return res
	}

	if m.Invariant != nil {
		if err := m.Invariant(m.Init); err != nil {
			return fail(root, fmt.Errorf("invariant violated in initial state: %w", err))
		}
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		res.States++
		if res.States > maxStates {
			res.Err = fmt.Errorf("state budget exceeded (%d states)", maxStates)
			res.finishCoverage(covered, opt)
			return res
		}

		anyEnabled := false
		for tid := 0; tid < m.Threads; tid++ {
			for _, a := range m.Enabled(cur.s, tid) {
				anyEnabled = true
				covered[a.Name] = true
				next := a.Next(cur.s.Clone())
				res.Transitions++
				k := next.Key()
				if _, ok := seen[k]; ok {
					continue
				}
				n := &node{key: k, parent: cur.n, action: a.Name}
				seen[k] = n
				if m.Invariant != nil {
					if err := m.Invariant(next); err != nil {
						return fail(n, fmt.Errorf("invariant violated: %w", err))
					}
				}
				queue = append(queue, qent{s: next, n: n})
			}
		}
		if !anyEnabled {
			if m.Final == nil || !m.Final(cur.s) {
				res.Deadlocks++
				return fail(cur.n, fmt.Errorf("deadlock: all %d threads blocked in a non-final state", m.Threads))
			}
		}
	}

	res.finishCoverage(covered, opt)
	return res
}

func (r *Result) finishCoverage(covered map[string]bool, opt Options) {
	for name := range covered {
		r.Covered = append(r.Covered, name)
	}
	sort.Strings(r.Covered)
	for _, want := range opt.Coverage {
		if !covered[want] {
			r.Uncovered = append(r.Uncovered, want)
		}
	}
	sort.Strings(r.Uncovered)
}
