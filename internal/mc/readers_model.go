package mc

import "fmt"

// This file extends the NZSTM protocol model with visible read sharing, the
// configuration §3 actually checked: "each thread accessing up to three
// objects for either writing or reading using our read-sharing algorithm".
//
// A reader registers in the object's reader table, re-confirms the owner
// word, records the logical value it observed, and deregisters at the end
// of its transaction. A writer must drive every registered active reader to
// an acknowledged abort before mutating data in place (or, in the NZ
// variant, inflate past an unresponsive one). The checked invariant is the
// read-sharing safety property this protocol exists for: a transaction that
// COMMITS having read an object must have observed that object's current
// logical value as of its commit — i.e. no writer changed the object out
// from under a still-active reader.

// Op is one scripted access.
type Op struct {
	Obj   int
	Write bool
}

// R and W build script entries.
func R(obj int) Op { return Op{Obj: obj} }

// W builds a write entry.
func W(obj int) Op { return Op{Obj: obj, Write: true} }

// RWConfig configures the read-sharing model.
type RWConfig struct {
	Variant Variant
	Scripts [][]Op
	Objects int
	Retries int
}

// Additional thread PCs for the reader path.
const (
	pcRRegister int8 = 20 + iota
	pcRRecheck
	pcRRead
)

type rwState struct {
	cfg  *RWConfig
	Objs []objState
	Txns []txState
	Thr  []thrState
	// Readers[obj] is a bitmask of txn ids registered on obj.
	Readers []uint32
	// Seen[txn*objects+obj] records the value the txn read (+1; 0 = none).
	Seen []int8
}

// Key implements State.
func (s *rwState) Key() string {
	b := make([]byte, 0, 8*len(s.Objs)+2*len(s.Txns)+6*len(s.Thr)+4*len(s.Readers)+len(s.Seen))
	for _, o := range s.Objs {
		b = append(b, byte(o.Owner), boolByte(o.Inflated), byte(o.Val),
			byte(o.Backup), byte(o.BackupBy), byte(o.LocOld),
			byte(o.LocNew)|boolByte(o.LocDirty)<<7, byte(o.LocAborted))
	}
	for _, t := range s.Txns {
		b = append(b, t.Status, boolByte(t.ANP))
	}
	for _, th := range s.Thr {
		b = append(b, byte(th.Attempt), byte(th.PC), byte(th.Idx),
			byte(th.Obs)|boolByte(th.ObsInfl)<<7,
			boolByte(th.Failed)|boolByte(th.ViaLoc)<<1)
	}
	for _, r := range s.Readers {
		b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	for _, v := range s.Seen {
		b = append(b, byte(v))
	}
	return string(b)
}

// Clone implements State.
func (s *rwState) Clone() State {
	c := &rwState{cfg: s.cfg}
	c.Objs = append([]objState(nil), s.Objs...)
	c.Txns = append([]txState(nil), s.Txns...)
	c.Thr = append([]thrState(nil), s.Thr...)
	c.Readers = append([]uint32(nil), s.Readers...)
	c.Seen = append([]int8(nil), s.Seen...)
	return c
}

func (c *RWConfig) txID(tid int, attempt int8) int8 {
	return int8(tid*(c.Retries+1) + int(attempt))
}

func (s *rwState) me(tid int) int8 { return s.cfg.txID(tid, s.Thr[tid].Attempt) }
func (s *rwState) op(tid int) Op   { return s.cfg.Scripts[tid][s.Thr[tid].Idx] }

// logical returns an object's current logical value.
func (s *rwState) logical(oi int) int8 {
	o := &s.Objs[oi]
	switch {
	case o.Inflated:
		if o.Owner >= 0 && s.Txns[o.Owner].Status == stCommitted {
			return o.LocNew
		}
		return o.LocOld
	case o.BackupBy >= 0 && s.Txns[o.BackupBy].Status == stAborted:
		return o.Backup
	default:
		return o.Val
	}
}

// RWModel builds the read-sharing model.
func RWModel(cfg RWConfig) Model {
	threads := len(cfg.Scripts)
	txns := threads * (cfg.Retries + 1)
	init := &rwState{cfg: &cfg}
	init.Objs = make([]objState, cfg.Objects)
	for i := range init.Objs {
		init.Objs[i] = objState{Owner: -1, BackupBy: -1, LocAborted: -1}
	}
	init.Txns = make([]txState, txns)
	init.Thr = make([]thrState, threads)
	for i := range init.Thr {
		init.Thr[i] = thrState{PC: pcObserve, Obs: -1}
	}
	init.Readers = make([]uint32, cfg.Objects)
	init.Seen = make([]int8, txns*cfg.Objects)

	return Model{
		Name:    fmt.Sprintf("nzstm-rw-v%d", cfg.Variant),
		Init:    init,
		Threads: threads,
		Enabled: func(st State, tid int) []Action { return rwEnabled(st.(*rwState), tid) },
		Invariant: func(st State) error {
			return rwInvariant(st.(*rwState))
		},
		Final: func(st State) bool {
			s := st.(*rwState)
			for i := range s.Thr {
				if s.Thr[i].PC != pcDone {
					return false
				}
			}
			return true
		},
	}
}

// releaseTxn clears a transaction's reader registrations (the finish step).
func (s *rwState) releaseTxn(tx int8) {
	for oi := range s.Readers {
		s.Readers[oi] &^= 1 << uint(tx)
	}
}

// activeReader returns a registered active (unacknowledged) reader of oi
// other than me, or -1.
func (s *rwState) activeReader(oi int, me int8) int8 {
	for t := 0; t < len(s.Txns); t++ {
		if int8(t) == me || s.Readers[oi]&(1<<uint(t)) == 0 {
			continue
		}
		if s.Txns[t].Status == stActive {
			return int8(t)
		}
	}
	return -1
}

func rwAct(name string, f func(s *rwState)) Action {
	return Action{Name: name, Next: func(st State) State {
		s := st.(*rwState)
		f(s)
		return s
	}}
}

func rwEnabled(s *rwState, tid int) []Action {
	th := &s.Thr[tid]
	if th.PC == pcDone {
		return nil
	}
	cfg := s.cfg
	me := s.me(tid)
	myTx := &s.Txns[me]
	var oi int
	var isWrite bool
	if int(th.Idx) < len(cfg.Scripts[tid]) {
		oi = s.op(tid).Obj
		isWrite = s.op(tid).Write
	}

	retryActs := func() []Action {
		return []Action{rwAct("retry", func(s *rwState) {
			th := &s.Thr[tid]
			s.releaseTxn(s.me(tid))
			if int(th.Attempt) >= s.cfg.Retries {
				th.Failed = true
				th.PC = pcDone
				return
			}
			th.Attempt++
			th.Idx = 0
			th.PC = pcObserve
		})}
	}

	switch th.PC {
	case pcRetry:
		return retryActs()

	case pcObserve:
		return []Action{rwAct("observe", func(s *rwState) {
			o := &s.Objs[oi]
			s.Thr[tid].Obs = o.Owner
			s.Thr[tid].ObsInfl = o.Inflated
			s.Thr[tid].PC = pcDecide
		})}

	case pcDecide:
		if !isWrite {
			return rwReaderDecide(s, tid, oi)
		}
		return rwWriterDecide(s, tid, oi)

	// ---- reader path ----
	case pcRRegister:
		return []Action{rwAct("r-register", func(s *rwState) {
			s.Readers[oi] |= 1 << uint(s.me(tid))
			s.Thr[tid].PC = pcRRecheck
		})}

	case pcRRecheck:
		obs, obsInfl := th.Obs, th.ObsInfl
		return []Action{rwAct("r-recheck", func(s *rwState) {
			o := &s.Objs[oi]
			if o.Owner != obs || o.Inflated != obsInfl {
				s.Readers[oi] &^= 1 << uint(s.me(tid))
				s.Thr[tid].PC = pcObserve // a writer slipped in
				return
			}
			s.Thr[tid].PC = pcRRead
		})}

	case pcRRead:
		if myTx.ANP || myTx.Status != stActive {
			return []Action{rwAct("r-validate-ack", func(s *rwState) {
				s.Txns[me].Status = stAborted
				s.Thr[tid].PC = pcRetry
			})}
		}
		return []Action{rwAct("r-read", func(s *rwState) {
			th := &s.Thr[tid]
			s.Seen[int(me)*s.cfg.Objects+oi] = s.logical(oi) + 1
			th.Idx++
			if int(th.Idx) < len(s.cfg.Scripts[tid]) {
				th.PC = pcObserve
			} else {
				th.PC = pcCommit
			}
		})}

	// ---- writer path (after pcDecide) ----
	case pcTryCAS:
		obs, obsInfl := th.Obs, th.ObsInfl
		return []Action{rwAct("cas-owner", func(s *rwState) {
			o := &s.Objs[oi]
			if o.Owner != obs || o.Inflated != obsInfl {
				s.Thr[tid].PC = pcObserve
				return
			}
			o.Owner = me
			s.Thr[tid].ViaLoc = false
			s.Thr[tid].PC = pcRestore
		})}

	case pcRestore:
		// Post-CAS reader resolution comes first: every registered active
		// reader must acknowledge (or, in NZ, be inflated past) before data
		// is touched in place.
		if r := s.activeReader(oi, me); r >= 0 {
			var acts []Action
			if !s.Txns[r].ANP {
				acts = append(acts, rwAct("w-request-reader-abort", func(s *rwState) {
					s.Txns[r].ANP = true
				}))
			} else if cfg.Variant == VariantNZ && !s.Objs[oi].Inflated && s.Objs[oi].Owner == me {
				acts = append(acts, rwAct("w-inflate-past-reader", func(s *rwState) {
					o := &s.Objs[oi]
					if o.Owner != me || o.Inflated {
						s.Thr[tid].PC = pcObserve
						return
					}
					src := o.Val
					if o.BackupBy >= 0 && s.Txns[o.BackupBy].Status != stCommitted {
						src = o.Backup
					}
					o.Inflated = true
					o.LocOld, o.LocNew = src, src
					o.LocDirty = false
					o.LocAborted = r
					s.Thr[tid].ViaLoc = true
					s.Thr[tid].PC = pcValidate
				}))
			}
			acts = append(acts, rwAct("w-cm-abort-self", func(s *rwState) {
				s.Txns[me].Status = stAborted
				s.Thr[tid].PC = pcRetry
			}))
			return acts // otherwise blocked until the reader acknowledges
		}
		return []Action{rwAct("restore", func(s *rwState) {
			o := &s.Objs[oi]
			if o.BackupBy >= 0 && s.Txns[o.BackupBy].Status == stAborted {
				o.Val = o.Backup
			}
			s.Thr[tid].PC = pcBackup
		})}

	case pcBackup:
		return []Action{rwAct("backup", func(s *rwState) {
			o := &s.Objs[oi]
			o.Backup = o.Val
			o.BackupBy = me
			s.Thr[tid].PC = pcValidate
		})}

	case pcValidate:
		if myTx.ANP || myTx.Status != stActive {
			return []Action{rwAct("validate-ack", func(s *rwState) {
				s.Txns[me].Status = stAborted
				s.Thr[tid].PC = pcRetry
			})}
		}
		return []Action{rwAct("validate-ok", func(s *rwState) {
			s.Thr[tid].PC = pcWrite
		})}

	case pcWrite:
		o := &s.Objs[oi]
		var acts []Action
		if th.ViaLoc && o.Inflated && o.Owner == me {
			// Writing through our Locator: every registered reader must be
			// doomed first — it may have read the in-place value before we
			// inflated (mirrors doomReaders in the implementation).
			for t := 0; t < len(s.Txns); t++ {
				t := t
				if int8(t) == me || s.Readers[oi]&(1<<uint(t)) == 0 {
					continue
				}
				if s.Txns[t].Status == stActive && !s.Txns[t].ANP {
					return []Action{
						rwAct("w-doom-reader", func(s *rwState) {
							s.Txns[t].ANP = true
						}),
						rwAct("w-cm-abort-self", func(s *rwState) {
							s.Txns[me].Status = stAborted
							s.Thr[tid].PC = pcRetry
						}),
					}
				}
			}
		}
		if o.Inflated && o.Owner == me && !o.LocDirty &&
			o.LocAborted >= 0 && s.Txns[o.LocAborted].Status == stAborted &&
			s.activeReader(oi, me) < 0 {
			acts = append(acts, rwAct("deflate", func(s *rwState) {
				o := &s.Objs[oi]
				o.Backup = o.LocNew
				o.BackupBy = me
				o.Val = o.LocNew
				o.Inflated = false
				o.LocAborted = -1
				s.Thr[tid].ViaLoc = false
			}))
		}
		acts = append(acts, rwAct("write", func(s *rwState) {
			o := &s.Objs[oi]
			th := &s.Thr[tid]
			switch {
			case th.ViaLoc && o.Inflated && o.Owner == me:
				o.LocNew++
				o.LocDirty = true
			case th.ViaLoc:
				// displaced: private copy, no shared effect
			default:
				o.Val++
			}
			th.Idx++
			if int(th.Idx) < len(s.cfg.Scripts[tid]) {
				th.PC = pcObserve
			} else {
				th.PC = pcCommit
			}
		}))
		return acts

	case pcCommit:
		return []Action{rwAct("commit", func(s *rwState) {
			tx := &s.Txns[me]
			th := &s.Thr[tid]
			if tx.Status == stActive && !tx.ANP {
				tx.Status = stCommitted
				s.releaseTxn(me)
				th.PC = pcDone
			} else {
				tx.Status = stAborted
				th.PC = pcRetry
			}
		})}
	}
	return nil
}

// rwReaderDecide handles pcDecide for a read access.
func rwReaderDecide(s *rwState, tid int, oi int) []Action {
	me := s.me(tid)
	th := &s.Thr[tid]
	if th.ObsInfl {
		// Inflated object: readers take the displaced value directly after
		// registering; model it by re-observing until a writer deflates or
		// by reading via the locator value.
		return []Action{rwAct("r-loc-read", func(s *rwState) {
			o := &s.Objs[oi]
			th := &s.Thr[tid]
			if !o.Inflated {
				th.PC = pcObserve
				return
			}
			lo := o.Owner
			me := s.me(tid)
			if lo >= 0 && lo != me && s.Txns[lo].Status == stActive && !s.Txns[lo].ANP {
				// active locator owner: wait (re-observe later)
				th.PC = pcObserve
				return
			}
			s.Readers[oi] |= 1 << uint(me)
			v := o.LocOld
			if lo == me || (lo >= 0 && s.Txns[lo].Status == stCommitted) {
				v = o.LocNew
			}
			s.Seen[int(s.me(tid))*s.cfg.Objects+oi] = v + 1
			th.Idx++
			if int(th.Idx) < len(s.cfg.Scripts[tid]) {
				th.PC = pcObserve
			} else {
				th.PC = pcCommit
			}
		})}
	}
	if th.Obs >= 0 && th.Obs != me && s.Txns[th.Obs].Status == stActive {
		enemy := th.Obs
		var acts []Action
		if !s.Txns[enemy].ANP {
			acts = append(acts, rwAct("r-request-abort", func(s *rwState) {
				s.Txns[enemy].ANP = true
			}))
		}
		acts = append(acts, rwAct("r-cm-abort-self", func(s *rwState) {
			s.Txns[me].Status = stAborted
			s.Thr[tid].PC = pcRetry
		}))
		if s.cfg.Variant == VariantNZ && s.Txns[enemy].ANP && s.Txns[enemy].Status == stActive &&
			s.Objs[oi].Owner == enemy && !s.Objs[oi].Inflated {
			// A blocked reader may inflate past an unresponsive owner too.
			acts = append(acts, rwAct("r-inflate", func(s *rwState) {
				o := &s.Objs[oi]
				if o.Owner != enemy || o.Inflated {
					s.Thr[tid].PC = pcObserve
					return
				}
				src := o.Val
				if o.BackupBy >= 0 && s.Txns[o.BackupBy].Status != stCommitted {
					src = o.Backup
				}
				o.Inflated = true
				o.Owner = s.me(tid)
				o.LocOld, o.LocNew = src, src
				o.LocDirty = false
				o.LocAborted = enemy
				s.Thr[tid].PC = pcObserve // read via the locator path
			}))
		}
		return acts // blocked until the owner acknowledges
	}
	return []Action{rwAct("r-go-register", func(s *rwState) {
		s.Thr[tid].PC = pcRRegister
	})}
}

// rwWriterDecide handles pcDecide for a write access.
func rwWriterDecide(s *rwState, tid int, oi int) []Action {
	me := s.me(tid)
	th := &s.Thr[tid]
	cfg := s.cfg
	if th.ObsInfl {
		return []Action{rwAct("w-loc-replace", func(s *rwState) {
			o := &s.Objs[oi]
			th := &s.Thr[tid]
			if !o.Inflated {
				th.PC = pcObserve
				return
			}
			lo := o.Owner
			if lo >= 0 && lo != me && s.Txns[lo].Status == stActive && !s.Txns[lo].ANP {
				s.Txns[lo].ANP = true // DSTM semantics: doom, no ack needed
				th.PC = pcObserve
				return
			}
			if lo == me {
				th.ViaLoc = true
				th.PC = pcValidate
				return
			}
			cur := o.LocOld
			if lo >= 0 && s.Txns[lo].Status == stCommitted {
				cur = o.LocNew
			}
			// Doom registered readers (no ack needed: displaced copies).
			for t := 0; t < len(s.Txns); t++ {
				if int8(t) != me && s.Readers[oi]&(1<<uint(t)) != 0 &&
					s.Txns[t].Status == stActive {
					s.Txns[t].ANP = true
				}
			}
			o.Owner = me
			o.LocOld, o.LocNew = cur, cur
			o.LocDirty = false
			th.ViaLoc = true
			th.PC = pcValidate
		})}
	}
	if th.Obs >= 0 && th.Obs != me && s.Txns[th.Obs].Status == stActive {
		enemy := th.Obs
		var acts []Action
		if cfg.Variant == VariantBuggy {
			acts = append(acts, rwAct("force-abort", func(s *rwState) {
				s.Txns[enemy].Status = stAborted
				s.Thr[tid].PC = pcTryCAS
			}))
			return acts
		}
		if !s.Txns[enemy].ANP {
			acts = append(acts, rwAct("request-abort", func(s *rwState) {
				s.Txns[enemy].ANP = true
			}))
		}
		acts = append(acts, rwAct("cm-abort-self", func(s *rwState) {
			s.Txns[me].Status = stAborted
			s.Thr[tid].PC = pcRetry
		}))
		if cfg.Variant == VariantNZ && s.Txns[enemy].ANP && s.Txns[enemy].Status == stActive &&
			s.Objs[oi].Owner == enemy && !s.Objs[oi].Inflated {
			acts = append(acts, rwAct("inflate", func(s *rwState) {
				o := &s.Objs[oi]
				if o.Owner != enemy || o.Inflated {
					s.Thr[tid].PC = pcObserve
					return
				}
				src := o.Val
				if o.BackupBy >= 0 && s.Txns[o.BackupBy].Status != stCommitted {
					src = o.Backup
				}
				o.Inflated = true
				o.Owner = me
				o.LocOld, o.LocNew = src, src
				o.LocDirty = false
				o.LocAborted = enemy
				s.Thr[tid].ViaLoc = true
				s.Thr[tid].PC = pcValidate
			}))
		}
		return acts
	}
	return []Action{rwAct("goto-cas", func(s *rwState) {
		s.Thr[tid].PC = pcTryCAS
	})}
}

// rwInvariant checks the read-sharing safety property plus the terminal
// conservation check.
func rwInvariant(s *rwState) error {
	for i := range s.Txns {
		t := &s.Txns[i]
		if t.Status == stCommitted && t.ANP {
			return fmt.Errorf("txn %d committed with AbortNowPlease set", i)
		}
	}
	// Read-sharing safety: a committed transaction's recorded reads must
	// equal the logical value at (and since) its commit. We check it in
	// every state: once a txn is committed, any object it read while
	// registered must not have changed logical value without the registered
	// reader having been... — for committed transactions the registration
	// is released, so we check at the moment of commit via the terminal
	// sweep below, and continuously for ACTIVE readers: an active,
	// registered, un-doomed reader's recorded value must still be the
	// logical value.
	for tid := range s.Thr {
		me := s.me(tid)
		tx := &s.Txns[me]
		if tx.Status != stActive || tx.ANP {
			continue
		}
		for oi := 0; oi < s.cfg.Objects; oi++ {
			if s.Readers[oi]&(1<<uint(me)) == 0 {
				continue
			}
			seen := s.Seen[int(me)*s.cfg.Objects+oi]
			if seen == 0 {
				continue // registered but not yet read
			}
			if s.logical(oi) != seen-1 {
				return fmt.Errorf("active un-doomed reader txn %d saw object %d as %d but logical value is now %d",
					me, oi, seen-1, s.logical(oi))
			}
		}
	}
	// Terminal conservation of increments.
	for i := range s.Thr {
		if s.Thr[i].PC != pcDone {
			return nil
		}
	}
	expect := make([]int8, s.cfg.Objects)
	for tid, script := range s.cfg.Scripts {
		committed := false
		for a := 0; a <= s.cfg.Retries; a++ {
			if s.Txns[s.cfg.txID(tid, int8(a))].Status == stCommitted {
				committed = true
			}
		}
		if committed {
			for _, op := range script {
				if op.Write {
					expect[op.Obj]++
				}
			}
		}
	}
	for oi := 0; oi < s.cfg.Objects; oi++ {
		if s.logical(oi) != expect[oi] {
			return fmt.Errorf("object %d: logical value %d, want %d committed increments",
				oi, s.logical(oi), expect[oi])
		}
	}
	return nil
}
