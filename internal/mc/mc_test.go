package mc

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// ---- checker machinery tests on a tiny hand-made model ----

type counterState struct {
	vals [2]int
}

func (s *counterState) Key() string { return fmt.Sprint(s.vals) }
func (s *counterState) Clone() State {
	c := *s
	return &c
}

func TestCheckExploresAllInterleavings(t *testing.T) {
	// Two threads each increment their own counter twice: 6 interleavings,
	// 9 distinct states.
	m := Model{
		Name:    "counters",
		Init:    &counterState{},
		Threads: 2,
		Enabled: func(st State, tid int) []Action {
			s := st.(*counterState)
			if s.vals[tid] >= 2 {
				return nil
			}
			return []Action{{
				Name: fmt.Sprintf("inc%d", tid),
				Next: func(st State) State {
					st.(*counterState).vals[tid]++
					return st
				},
			}}
		},
		Final: func(st State) bool {
			s := st.(*counterState)
			return s.vals[0] == 2 && s.vals[1] == 2
		},
	}
	res := Check(m, Options{Coverage: []string{"inc0", "inc1", "never"}})
	if res.Err != nil {
		t.Fatalf("unexpected error: %v", res.Err)
	}
	if res.States != 9 {
		t.Errorf("states = %d, want 9", res.States)
	}
	if len(res.Uncovered) != 1 || res.Uncovered[0] != "never" {
		t.Errorf("uncovered = %v, want [never]", res.Uncovered)
	}
}

func TestCheckFindsDeadlock(t *testing.T) {
	// A thread that blocks forever in a non-final state.
	m := Model{
		Name:    "stuck",
		Init:    &counterState{},
		Threads: 1,
		Enabled: func(st State, tid int) []Action {
			s := st.(*counterState)
			if s.vals[0] == 1 {
				return nil // blocked
			}
			return []Action{{Name: "step", Next: func(st State) State {
				st.(*counterState).vals[0] = 1
				return st
			}}}
		},
		Final: func(State) bool { return false },
	}
	res := Check(m, Options{})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "deadlock") {
		t.Fatalf("expected deadlock, got %v", res.Err)
	}
	if len(res.Trace) != 1 || res.Trace[0] != "step" {
		t.Errorf("trace = %v, want [step]", res.Trace)
	}
}

func TestCheckFindsInvariantViolationWithTrace(t *testing.T) {
	bad := errors.New("bad state")
	m := Model{
		Name:    "inv",
		Init:    &counterState{},
		Threads: 1,
		Enabled: func(st State, tid int) []Action {
			s := st.(*counterState)
			if s.vals[0] >= 3 {
				return nil
			}
			return []Action{{Name: "step", Next: func(st State) State {
				st.(*counterState).vals[0]++
				return st
			}}}
		},
		Invariant: func(st State) error {
			if st.(*counterState).vals[0] == 2 {
				return bad
			}
			return nil
		},
		Final: func(State) bool { return true },
	}
	res := Check(m, Options{})
	if res.Err == nil || !errors.Is(res.Err, bad) {
		t.Fatalf("expected invariant violation, got %v", res.Err)
	}
	if len(res.Trace) != 2 {
		t.Errorf("trace length = %d (%v), want 2 steps to reach vals=2", len(res.Trace), res.Trace)
	}
}

func TestCheckStateBudget(t *testing.T) {
	m := Model{
		Name:    "unbounded",
		Init:    &counterState{},
		Threads: 1,
		Enabled: func(st State, tid int) []Action {
			return []Action{{Name: "grow", Next: func(st State) State {
				s := st.(*counterState)
				s.vals[0]++ // never terminates (until int wraps)
				return s
			}}}
		},
		Final: func(State) bool { return true },
	}
	res := Check(m, Options{MaxStates: 50})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "budget") {
		t.Fatalf("expected budget error, got %v", res.Err)
	}
}

// ---- NZSTM protocol model checks (the paper's §3, mechanised) ----

func TestNZSTMTwoThreadsOneObject(t *testing.T) {
	res := Check(NZModel(NZConfig{
		Variant: VariantNZ,
		Scripts: [][]int{{0}, {0}},
		Objects: 1,
		Retries: 1,
	}), Options{Coverage: []string{
		"observe", "request-abort", "inflate", "deflate",
		"cas-owner", "restore", "backup", "validate-ack", "validate-ok",
		"write", "commit", "retry", "cm-abort-self",
		"loc-replace", "loc-request-abort",
	}})
	if res.Err != nil {
		t.Fatalf("NZSTM model violated: %v\ntrace: %v", res.Err, res.Trace)
	}
	if len(res.Uncovered) > 0 {
		t.Errorf("uncovered protocol actions: %v (all code paths should be reachable, §3)", res.Uncovered)
	}
	if res.States < 1000 {
		t.Errorf("suspiciously small state space: %d states", res.States)
	}
	t.Logf("explored %d states, %d transitions", res.States, res.Transitions)
}

func TestNZSTMCrossedScripts(t *testing.T) {
	// Two objects acquired in opposite orders: the classic deadlock shape.
	res := Check(NZModel(NZConfig{
		Variant: VariantNZ,
		Scripts: [][]int{{0, 1}, {1, 0}},
		Objects: 2,
		Retries: 1,
	}), Options{})
	if res.Err != nil {
		t.Fatalf("crossed-script model violated: %v\ntrace: %v", res.Err, res.Trace)
	}
}

func TestBZSTMModelBlocksButSafe(t *testing.T) {
	res := Check(NZModel(NZConfig{
		Variant: VariantBZ,
		Scripts: [][]int{{0}, {0}},
		Objects: 1,
		Retries: 1,
	}), Options{Coverage: []string{"inflate"}})
	if res.Err != nil {
		t.Fatalf("BZSTM model violated: %v\ntrace: %v", res.Err, res.Trace)
	}
	if len(res.Uncovered) != 1 {
		t.Error("BZSTM must never inflate")
	}
}

// The deliberately broken variant force-aborts in-place writers without the
// request/acknowledge handshake; the checker must exhibit a lost update —
// the exact hazard §2 argues makes naive nonblocking in-place STMs unsound.
func TestBuggyForceAbortIsCaught(t *testing.T) {
	res := Check(NZModel(NZConfig{
		Variant: VariantBuggy,
		Scripts: [][]int{{0}, {0}},
		Objects: 1,
		Retries: 1,
	}), Options{})
	if res.Err == nil {
		t.Fatal("checker failed to find the late-write corruption")
	}
	if !strings.Contains(res.Err.Error(), "logical value") {
		t.Fatalf("unexpected violation kind: %v", res.Err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no counterexample trace")
	}
	t.Logf("counterexample (%d steps): %v", len(res.Trace), res.Trace)
}

func TestNZSTMThreeThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res := Check(NZModel(NZConfig{
		Variant: VariantNZ,
		Scripts: [][]int{{0}, {0}, {0}},
		Objects: 1,
		Retries: 1,
	}), Options{MaxStates: 1 << 23})
	if res.Err != nil {
		t.Fatalf("3-thread model violated: %v\ntrace: %v", res.Err, res.Trace)
	}
	t.Logf("explored %d states, %d transitions", res.States, res.Transitions)
}

// §2.3.2's claim, mechanically verified: the very design that is broken
// without SCSS (direct force-aborts on in-place writers — see
// TestBuggyForceAbortIsCaught) becomes safe when every store is atomically
// paired with a check of the writer's own status word.
func TestSCSSVariantMakesForceAbortSafe(t *testing.T) {
	res := Check(NZModel(NZConfig{
		Variant: VariantSCSS,
		Scripts: [][]int{{0}, {0}},
		Objects: 1,
		Retries: 1,
	}), Options{})
	if res.Err != nil {
		t.Fatalf("SCSS model violated: %v\ntrace: %v", res.Err, res.Trace)
	}
	res3 := Check(NZModel(NZConfig{
		Variant: VariantSCSS,
		Scripts: [][]int{{0}, {0}, {0}},
		Objects: 1,
		Retries: 1,
	}), Options{MaxStates: 1 << 23})
	if res3.Err != nil {
		t.Fatalf("3-thread SCSS model violated: %v\ntrace: %v", res3.Err, res3.Trace)
	}
}
