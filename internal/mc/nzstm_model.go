package mc

import (
	"fmt"
)

// This file models the NZSTM acquire/abort-request/acknowledge protocol
// (§2.2–2.3) at the granularity of its atomic machine steps, for exhaustive
// checking — the counterpart of the paper's Promela model (§3).
//
// Each thread runs one transaction that acquires the objects of its script
// in order, increments each, and commits, retrying up to Retries times. The
// model exposes the protocol's critical races: the abort-request /
// acknowledgement handshake, lazy backup restoration, late writes by
// unresponsive zombies, inflation past them, and deflation afterwards.
//
// Four variants are checkable:
//
//   - VariantNZ — full NZSTM: unresponsive enemies are inflated past.
//   - VariantBZ — blocking: waiters may only wait for the ack (or give up).
//   - VariantBuggy — a deliberately broken design that force-aborts the
//     enemy without the request/acknowledge handshake, as a nonblocking STM
//     storing data in place might naively try. The checker must find the
//     lost-update this permits; this is the race that motivates the whole
//     NZSTM design (§2: "T2 cannot simply wait … it is not safe for T2 …
//     to update the object data in place, because T1 may still overwrite
//     the data").
//   - VariantSCSS — the same direct abort made safe by pairing every store
//     (and the backup-cell install) with a check of the writer's own
//     status word (§2.3.2).
type Variant int

// Model variants.
const (
	VariantNZ Variant = iota
	VariantBZ
	VariantBuggy
	// VariantSCSS models §2.3.2: conflicts are resolved by a direct abort
	// (like VariantBuggy — no acknowledgement handshake), but every store
	// is atomically paired with a check of the writer's own status, so a
	// displaced writer's "late write" can never land. The checker proves
	// this is exactly the difference between broken and correct: Buggy
	// fails, SCSS passes.
	VariantSCSS
)

// Transaction status values in the model.
const (
	stActive uint8 = iota
	stCommitted
	stAborted
)

// Thread program counters.
const (
	pcObserve int8 = iota
	pcDecide
	pcTryCAS
	pcRestore
	pcBackup
	pcValidate
	pcWrite
	pcCommit
	pcRetry
	pcDone
)

type objState struct {
	Owner      int8 // txn id; -1 = never owned
	Inflated   bool
	Val        int8 // in-place Data field
	Backup     int8
	BackupBy   int8 // txn id; -1 = none
	LocOld     int8
	LocNew     int8
	LocDirty   bool
	LocAborted int8
}

type txState struct {
	Status uint8
	ANP    bool
}

type thrState struct {
	Attempt int8
	PC      int8
	Idx     int8 // position in the script
	Obs     int8 // observed owner at pcObserve
	ObsInfl bool
	ViaLoc  bool // current object was acquired via a Locator: writes go to
	// the (private) new-data copy, never to the in-place Data field
	Failed bool
}

// NZConfig describes a model instance.
type NZConfig struct {
	Variant Variant
	Scripts [][]int // Scripts[tid] = object indices to write, in order
	Objects int
	Retries int // attempts per thread = Retries+1
}

type nzState struct {
	cfg  *NZConfig
	Objs []objState
	Txns []txState
	Thr  []thrState
}

// Key implements State.
func (s *nzState) Key() string {
	b := make([]byte, 0, 8*len(s.Objs)+2*len(s.Txns)+5*len(s.Thr))
	for _, o := range s.Objs {
		b = append(b, byte(o.Owner), boolByte(o.Inflated), byte(o.Val),
			byte(o.Backup), byte(o.BackupBy), byte(o.LocOld),
			byte(o.LocNew)|boolByte(o.LocDirty)<<7, byte(o.LocAborted))
	}
	for _, t := range s.Txns {
		b = append(b, t.Status, boolByte(t.ANP))
	}
	for _, th := range s.Thr {
		b = append(b, byte(th.Attempt), byte(th.PC), byte(th.Idx),
			byte(th.Obs)|boolByte(th.ObsInfl)<<7,
			boolByte(th.Failed)|boolByte(th.ViaLoc)<<1)
	}
	return string(b)
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// Clone implements State.
func (s *nzState) Clone() State {
	c := &nzState{cfg: s.cfg}
	c.Objs = append([]objState(nil), s.Objs...)
	c.Txns = append([]txState(nil), s.Txns...)
	c.Thr = append([]thrState(nil), s.Thr...)
	return c
}

// txID maps (thread, attempt) to a transaction slot: a retried transaction
// is a fresh Transaction object, as in the implementation and the paper.
func (c *NZConfig) txID(tid int, attempt int8) int8 {
	return int8(tid*(c.Retries+1) + int(attempt))
}

// NZModel builds the checkable model for the configuration.
func NZModel(cfg NZConfig) Model {
	threads := len(cfg.Scripts)
	init := &nzState{cfg: &cfg}
	init.Objs = make([]objState, cfg.Objects)
	for i := range init.Objs {
		init.Objs[i] = objState{Owner: -1, BackupBy: -1, LocAborted: -1}
	}
	init.Txns = make([]txState, threads*(cfg.Retries+1))
	init.Thr = make([]thrState, threads)
	for i := range init.Thr {
		init.Thr[i] = thrState{PC: pcObserve, Obs: -1}
	}

	return Model{
		Name:    fmt.Sprintf("nzstm-v%d", cfg.Variant),
		Init:    init,
		Threads: threads,
		Enabled: func(st State, tid int) []Action { return enabled(st.(*nzState), tid) },
		Invariant: func(st State) error {
			return invariant(st.(*nzState))
		},
		Final: func(st State) bool {
			s := st.(*nzState)
			for i := range s.Thr {
				if s.Thr[i].PC != pcDone {
					return false
				}
			}
			return true
		},
	}
}

// me returns the thread's current transaction id.
func (s *nzState) me(tid int) int8 { return s.cfg.txID(tid, s.Thr[tid].Attempt) }

// obj returns the object the thread is currently working on.
func (s *nzState) obj(tid int) int { return s.cfg.Scripts[tid][s.Thr[tid].Idx] }

// act is a helper for building actions that mutate the cloned state.
func act(name string, f func(s *nzState)) Action {
	return Action{Name: name, Next: func(st State) State {
		s := st.(*nzState)
		f(s)
		return s
	}}
}

func enabled(s *nzState, tid int) []Action {
	th := &s.Thr[tid]
	if th.PC == pcDone {
		return nil
	}
	cfg := s.cfg
	me := s.me(tid)
	myTx := &s.Txns[me]

	// An aborted transaction (acknowledged abort) observed at any step
	// before Validate/Commit cannot happen: acknowledgement is what these
	// steps do. ANP may be set at any time by others.

	switch th.PC {
	case pcObserve:
		oi := s.obj(tid)
		return []Action{act("observe", func(s *nzState) {
			o := &s.Objs[oi]
			s.Thr[tid].Obs = o.Owner
			s.Thr[tid].ObsInfl = o.Inflated
			s.Thr[tid].PC = pcDecide
		})}

	case pcDecide:
		oi := s.obj(tid)
		if th.ObsInfl {
			return locatorActions(s, tid, oi)
		}
		if th.Obs >= 0 && th.Obs != me && s.Txns[th.Obs].Status == stActive {
			enemy := th.Obs
			var acts []Action
			if cfg.Variant == VariantBuggy || cfg.Variant == VariantSCSS {
				// Abort the enemy directly, no handshake. Safe only when
				// every store is SCSS-paired (VariantSCSS); plain Buggy
				// loses updates to late writes.
				acts = append(acts, act("force-abort", func(s *nzState) {
					s.Txns[enemy].Status = stAborted
					s.Thr[tid].PC = pcTryCAS
				}))
				return acts
			}
			if !s.Txns[enemy].ANP {
				acts = append(acts, act("request-abort", func(s *nzState) {
					s.Txns[enemy].ANP = true
				}))
			}
			// (Once the enemy acknowledges, the enclosing guard fails and
			// the thread proceeds through goto-cas — that is the "ack seen"
			// transition.)
			// The contention manager may always decide to abort us instead.
			acts = append(acts, act("cm-abort-self", func(s *nzState) {
				s.Txns[me].Status = stAborted
				s.Thr[tid].PC = pcRetry
			}))
			if cfg.Variant == VariantNZ && s.Txns[enemy].ANP && s.Txns[enemy].Status == stActive &&
				s.Objs[oi].Owner == enemy && !s.Objs[oi].Inflated {
				// Patience exhausted: inflate past the unresponsive enemy
				// (§2.3.1), adopting the pending backup as the old value.
				// The owner-word conditions above are the implementation's
				// pre-CAS checks: "the object has not been acquired or
				// inflated by another transaction"; the effect re-verifies
				// them, modelling the CAS itself.
				acts = append(acts, act("inflate", func(s *nzState) {
					o := &s.Objs[oi]
					if o.Owner != enemy || o.Inflated {
						s.Thr[tid].PC = pcObserve // the CAS would have failed
						return
					}
					src := o.Val
					if o.BackupBy >= 0 && s.Txns[o.BackupBy].Status != stCommitted {
						src = o.Backup
					}
					o.Inflated = true
					o.Owner = me
					o.LocOld, o.LocNew = src, src
					o.LocDirty = false
					o.LocAborted = enemy
					s.Thr[tid].ViaLoc = true
					s.Thr[tid].PC = pcValidate
				}))
			}
			return acts
		}
		// No active enemy: try to claim.
		return []Action{act("goto-cas", func(s *nzState) {
			s.Thr[tid].PC = pcTryCAS
		})}

	case pcTryCAS:
		oi := s.obj(tid)
		obs, obsInfl := th.Obs, th.ObsInfl
		return []Action{act("cas-owner", func(s *nzState) {
			o := &s.Objs[oi]
			if o.Owner != obs || o.Inflated != obsInfl {
				s.Thr[tid].PC = pcObserve // CAS failed
				return
			}
			o.Owner = me
			s.Thr[tid].ViaLoc = false
			s.Thr[tid].PC = pcRestore
		})}

	case pcRestore:
		oi := s.obj(tid)
		return []Action{act("restore", func(s *nzState) {
			o := &s.Objs[oi]
			if o.BackupBy >= 0 && s.Txns[o.BackupBy].Status == stAborted {
				o.Val = o.Backup // lazy restoration of the pending backup
			}
			s.Thr[tid].PC = pcBackup
		})}

	case pcBackup:
		oi := s.obj(tid)
		return []Action{act("backup", func(s *nzState) {
			if s.cfg.Variant == VariantSCSS && s.Txns[me].Status != stActive {
				// SCSS pairs the backup-cell install with the status check
				// too: a displaced transaction's late install fails.
				s.Thr[tid].PC = pcRetry
				return
			}
			o := &s.Objs[oi]
			o.Backup = o.Val
			o.BackupBy = me
			s.Thr[tid].PC = pcValidate
		})}

	case pcValidate:
		if myTx.ANP || myTx.Status != stActive {
			return []Action{act("validate-ack", func(s *nzState) {
				s.Txns[me].Status = stAborted // the acknowledgement (§2.2)
				s.Thr[tid].PC = pcRetry
			})}
		}
		return []Action{act("validate-ok", func(s *nzState) {
			s.Thr[tid].PC = pcWrite
		})}

	case pcWrite:
		oi := s.obj(tid)
		o := &s.Objs[oi]
		var acts []Action
		if o.Inflated && o.Owner == me && !o.LocDirty &&
			o.LocAborted >= 0 && s.Txns[o.LocAborted].Status == stAborted {
			// The zombie finally acknowledged: deflate back in place
			// (§2.3.1) before writing.
			acts = append(acts, act("deflate", func(s *nzState) {
				o := &s.Objs[oi]
				o.Backup = o.LocNew
				o.BackupBy = me
				o.Val = o.LocNew
				o.Inflated = false
				o.LocAborted = -1
				s.Thr[tid].ViaLoc = false // back to in-place ownership
			}))
		}
		acts = append(acts, act("write", func(s *nzState) {
			o := &s.Objs[oi]
			th := &s.Thr[tid]
			if s.cfg.Variant == VariantSCSS && s.Txns[me].Status != stActive {
				// The Single-Compare-Single-Store pairing: the store fires
				// only if our status word is still clean — a displaced
				// writer's store fails instead of scribbling (§2.3.2).
				th.PC = pcRetry
				return
			}
			switch {
			case th.ViaLoc && o.Inflated && o.Owner == me:
				o.LocNew++ // working on the locator's new-data copy
				o.LocDirty = true
			case th.ViaLoc:
				// We acquired via a Locator but were displaced (our locator
				// was replaced, or the object deflated away from us): the
				// write lands in our private, now-unreachable new-data copy
				// and has no shared effect.
			default:
				// In-place store. If we have been displaced (inflated past,
				// or force-aborted in the buggy variant) this is exactly
				// the "late write" scribbling on the Data field; NZSTM is
				// designed so that it can never corrupt the logical value.
				o.Val++
			}
			th.Idx++
			if int(th.Idx) < len(s.cfg.Scripts[tid]) {
				th.PC = pcObserve
			} else {
				th.PC = pcCommit
			}
		}))
		return acts

	case pcCommit:
		return []Action{act("commit", func(s *nzState) {
			tx := &s.Txns[me]
			th := &s.Thr[tid]
			if tx.Status == stActive && !tx.ANP {
				tx.Status = stCommitted
				th.PC = pcDone
			} else {
				tx.Status = stAborted
				th.PC = pcRetry
			}
		})}

	case pcRetry:
		return []Action{act("retry", func(s *nzState) {
			th := &s.Thr[tid]
			if int(th.Attempt) >= s.cfg.Retries {
				th.Failed = true
				th.PC = pcDone
				return
			}
			th.Attempt++
			th.Idx = 0
			th.PC = pcObserve
		})}
	}
	return nil
}

// locatorActions handles pcDecide when the object was observed inflated:
// the DSTM-style path (§2.3.1).
func locatorActions(s *nzState, tid int, oi int) []Action {
	me := s.me(tid)
	o := &s.Objs[oi]
	if o.Owner == me && o.Inflated {
		return []Action{act("loc-own", func(s *nzState) {
			s.Thr[tid].ViaLoc = true
			s.Thr[tid].PC = pcValidate
		})}
	}
	if !o.Inflated {
		// Deflated since we observed; re-observe.
		return []Action{act("loc-stale", func(s *nzState) {
			s.Thr[tid].PC = pcObserve
		})}
	}
	lo := o.Owner
	if lo >= 0 && s.Txns[lo].Status == stActive && !s.Txns[lo].ANP {
		return []Action{
			act("loc-request-abort", func(s *nzState) {
				// DSTM semantics: setting ANP alone dooms a locator owner —
				// it can no longer commit and only writes private copies.
				s.Txns[lo].ANP = true
			}),
			act("loc-cm-abort-self", func(s *nzState) {
				s.Txns[me].Status = stAborted
				s.Thr[tid].PC = pcRetry
			}),
		}
	}
	return []Action{act("loc-replace", func(s *nzState) {
		o := &s.Objs[oi]
		if !o.Inflated {
			s.Thr[tid].PC = pcObserve
			return
		}
		cur := o.LocOld
		if o.Owner >= 0 && s.Txns[o.Owner].Status == stCommitted {
			cur = o.LocNew
		}
		o.Owner = me
		o.LocOld, o.LocNew = cur, cur
		o.LocDirty = false
		s.Thr[tid].ViaLoc = true
		s.Thr[tid].PC = pcValidate
	})}
}

// invariant checks safety in every state, plus the conservation property in
// terminal states: every object's logical value equals the number of
// committed transactions that wrote it.
func invariant(s *nzState) error {
	for i := range s.Txns {
		t := &s.Txns[i]
		if t.Status == stCommitted && t.ANP {
			return fmt.Errorf("txn %d committed with AbortNowPlease set", i)
		}
	}
	// Terminal-state conservation check.
	for i := range s.Thr {
		if s.Thr[i].PC != pcDone {
			return nil
		}
	}
	expect := make([]int8, len(s.Objs))
	for tid, script := range s.cfg.Scripts {
		committed := false
		for a := 0; a <= s.cfg.Retries; a++ {
			if s.Txns[s.cfg.txID(tid, int8(a))].Status == stCommitted {
				committed = true
			}
		}
		if committed {
			for _, oi := range script {
				expect[oi]++
			}
		}
	}
	for oi := range s.Objs {
		o := &s.Objs[oi]
		var logical int8
		switch {
		case o.Inflated:
			logical = o.LocOld
			if o.Owner >= 0 && s.Txns[o.Owner].Status == stCommitted {
				logical = o.LocNew
			}
		case o.BackupBy >= 0 && s.Txns[o.BackupBy].Status == stAborted:
			logical = o.Backup
		default:
			logical = o.Val
		}
		if logical != expect[oi] {
			return fmt.Errorf("object %d: logical value %d, want %d committed increments",
				oi, logical, expect[oi])
		}
	}
	return nil
}
