package mc

import (
	"strings"
	"testing"
)

// Reader/writer on one object: the §3 read-sharing configuration.
func TestRWReaderWriterOneObject(t *testing.T) {
	res := Check(RWModel(RWConfig{
		Variant: VariantNZ,
		Scripts: [][]Op{{R(0)}, {W(0)}},
		Objects: 1,
		Retries: 1,
	}), Options{Coverage: []string{
		"r-register", "r-recheck", "r-read", "r-request-abort",
		"w-request-reader-abort", "w-inflate-past-reader", "r-inflate",
		"cas-owner", "restore", "backup", "write", "commit", "deflate",
	}})
	if res.Err != nil {
		t.Fatalf("read-sharing model violated: %v\ntrace: %v", res.Err, res.Trace)
	}
	if len(res.Uncovered) > 0 {
		t.Errorf("uncovered read-sharing actions: %v", res.Uncovered)
	}
	t.Logf("explored %d states, %d transitions", res.States, res.Transitions)
}

// Two readers and one writer on one object.
func TestRWTwoReadersOneWriter(t *testing.T) {
	res := Check(RWModel(RWConfig{
		Variant: VariantNZ,
		Scripts: [][]Op{{R(0)}, {R(0)}, {W(0)}},
		Objects: 1,
		Retries: 1,
	}), Options{MaxStates: 1 << 23})
	if res.Err != nil {
		t.Fatalf("violated: %v\ntrace: %v", res.Err, res.Trace)
	}
	t.Logf("explored %d states, %d transitions", res.States, res.Transitions)
}

// Mixed read/write scripts across two objects (the paper's "up to three
// objects for either writing or reading", scaled to stay exhaustive).
func TestRWMixedScriptsTwoObjects(t *testing.T) {
	res := Check(RWModel(RWConfig{
		Variant: VariantNZ,
		Scripts: [][]Op{{R(0), W(1)}, {R(1), W(0)}},
		Objects: 2,
		Retries: 1,
	}), Options{MaxStates: 1 << 23})
	if res.Err != nil {
		t.Fatalf("violated: %v\ntrace: %v", res.Err, res.Trace)
	}
	t.Logf("explored %d states, %d transitions", res.States, res.Transitions)
}

// The blocking variant with read sharing must also be safe (it just waits).
func TestRWBlockingVariant(t *testing.T) {
	res := Check(RWModel(RWConfig{
		Variant: VariantBZ,
		Scripts: [][]Op{{R(0)}, {W(0)}},
		Objects: 1,
		Retries: 1,
	}), Options{Coverage: []string{"inflate", "w-inflate-past-reader"}})
	if res.Err != nil {
		t.Fatalf("violated: %v\ntrace: %v", res.Err, res.Trace)
	}
	if len(res.Uncovered) != 2 {
		t.Error("BZ variant must never inflate")
	}
}

// The buggy force-abort design must also be caught in the presence of
// readers: a writer that force-aborts an in-place writer while a reader
// holds its value produces either a lost update or a stale committed read.
func TestRWBuggyVariantCaught(t *testing.T) {
	res := Check(RWModel(RWConfig{
		Variant: VariantBuggy,
		Scripts: [][]Op{{W(0)}, {W(0)}, {R(0)}},
		Objects: 1,
		Retries: 1,
	}), Options{MaxStates: 1 << 23})
	if res.Err == nil {
		t.Fatal("checker missed the force-abort hazard with readers present")
	}
	if !strings.Contains(res.Err.Error(), "logical value") &&
		!strings.Contains(res.Err.Error(), "saw object") {
		t.Fatalf("unexpected violation kind: %v", res.Err)
	}
	t.Logf("counterexample (%d steps): %v", len(res.Trace), res.Trace)
}
