package bench

import (
	"sort"

	"nztm/internal/tm"
)

// HashTable is the paper's hashtable microbenchmark: a concurrent set
// implemented as a chained hash table (§4.2). With 256 buckets over the
// 0–255 key range, chains are short and transactions rarely conflict —
// the low-contention end of the microbenchmarks and the best case for the
// hybrid's hardware path (§4.4).
type HashTable struct {
	sys     tm.System
	buckets []tm.Object // sentinel head per bucket
}

// NewHashTable creates an empty chained hash set.
func NewHashTable(sys tm.System, buckets int) *HashTable {
	if buckets <= 0 {
		buckets = 256
	}
	h := &HashTable{sys: sys, buckets: make([]tm.Object, buckets)}
	for i := range h.buckets {
		h.buckets[i] = sys.NewObject(&listNode{key: -1 << 62})
	}
	return h
}

func (h *HashTable) bucket(key int64) tm.Object {
	i := int(uint64(key*2654435761) % uint64(len(h.buckets)))
	return h.buckets[i]
}

func (h *HashTable) locate(tx tm.Tx, head tm.Object, key int64) (prev, cur tm.Object, curKey int64) {
	prev = head
	cur = tx.Read(prev).(*listNode).next
	for cur != nil {
		n := tx.Read(cur).(*listNode)
		if n.key == key {
			return prev, cur, n.key
		}
		prev, cur = cur, n.next
	}
	return prev, nil, 0
}

// Insert implements Set.
func (h *HashTable) Insert(th *tm.Thread, key int64) (bool, error) {
	added := false
	head := h.bucket(key)
	err := h.sys.Atomic(th, func(tx tm.Tx) error {
		_, cur, _ := h.locate(tx, head, key)
		if cur != nil {
			added = false
			return nil
		}
		first := tx.Read(head).(*listNode).next
		fresh := h.sys.NewObject(&listNode{key: key, next: first})
		tx.Update(head, func(d tm.Data) { d.(*listNode).next = fresh })
		added = true
		return nil
	})
	return added, err
}

// Delete implements Set.
func (h *HashTable) Delete(th *tm.Thread, key int64) (bool, error) {
	removed := false
	head := h.bucket(key)
	err := h.sys.Atomic(th, func(tx tm.Tx) error {
		prev, cur, _ := h.locate(tx, head, key)
		if cur == nil {
			removed = false
			return nil
		}
		next := tx.Read(cur).(*listNode).next
		tx.Update(prev, func(d tm.Data) { d.(*listNode).next = next })
		tx.Update(cur, func(d tm.Data) { d.(*listNode).next = nil })
		removed = true
		return nil
	})
	return removed, err
}

// Contains implements Set.
func (h *HashTable) Contains(th *tm.Thread, key int64) (bool, error) {
	found := false
	head := h.bucket(key)
	err := h.sys.Atomic(th, func(tx tm.Tx) error {
		_, cur, _ := h.locate(tx, head, key)
		found = cur != nil
		return nil
	})
	return found, err
}

// Snapshot implements Set.
func (h *HashTable) Snapshot(th *tm.Thread) ([]int64, error) {
	var out []int64
	err := h.sys.Atomic(th, func(tx tm.Tx) error {
		out = out[:0]
		for _, head := range h.buckets {
			cur := tx.Read(head).(*listNode).next
			for cur != nil {
				n := tx.Read(cur).(*listNode)
				out = append(out, n.key)
				cur = n.next
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

var _ Set = (*HashTable)(nil)
