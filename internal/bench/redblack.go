package bench

import (
	"fmt"

	"nztm/internal/tm"
)

// RBTree is the paper's redblack microbenchmark: a concurrent set
// implemented as a red-black tree (§4.2). Full CLRS insertion and deletion
// with rebalancing run inside a single transaction per operation; the nodes
// near the root form the conflict hotspot.
type RBTree struct {
	sys  tm.System
	root tm.Object // holder whose child field points at the root node
}

// rbNode is one tree node; nil object references are leaves. The holder
// node reuses the left field as the root pointer. val carries an optional
// payload object (the tree doubles as an ordered map — the shape vacation's
// tables need, §4.2).
type rbNode struct {
	key                 int64
	red                 bool
	left, right, parent tm.Object
	val                 tm.Object
}

// Clone implements tm.Data.
func (n *rbNode) Clone() tm.Data {
	c := *n
	return &c
}

// CopyFrom implements tm.Data.
func (n *rbNode) CopyFrom(src tm.Data) { *n = *(src.(*rbNode)) }

// Words implements tm.Data.
func (n *rbNode) Words() int { return 6 }

// NewRBTree creates an empty red-black set.
func NewRBTree(sys tm.System) *RBTree {
	return &RBTree{sys: sys, root: sys.NewObject(&rbNode{key: -1 << 62})}
}

// rbtx wraps one transaction's view of the tree.
type rbtx struct {
	tx  tm.Tx
	t   *RBTree
	sys tm.System
}

func (r rbtx) node(o tm.Object) *rbNode { return r.tx.Read(o).(*rbNode) }

func (r rbtx) rootObj() tm.Object { return r.node(r.t.root).left }

func (r rbtx) setRoot(v tm.Object) {
	r.tx.Update(r.t.root, func(d tm.Data) { d.(*rbNode).left = v })
}

func (r rbtx) mutate(o tm.Object, f func(n *rbNode)) {
	r.tx.Update(o, func(d tm.Data) { f(d.(*rbNode)) })
}

// replaceChild redirects parent's link from old to new; a nil parent means
// old was the root.
func (r rbtx) replaceChild(parent, old, new tm.Object) {
	if parent == nil {
		r.setRoot(new)
		return
	}
	r.mutate(parent, func(n *rbNode) {
		if n.left == old {
			n.left = new
		} else {
			n.right = new
		}
	})
}

// rotateLeft performs a left rotation around x.
func (r rbtx) rotateLeft(x tm.Object) {
	xn := r.node(x)
	y := xn.right
	yn := r.node(y)
	yl := yn.left
	r.mutate(x, func(n *rbNode) { n.right = yl })
	if yl != nil {
		r.mutate(yl, func(n *rbNode) { n.parent = x })
	}
	xp := xn.parent
	r.mutate(y, func(n *rbNode) { n.parent = xp; n.left = x })
	r.replaceChild(xp, x, y)
	r.mutate(x, func(n *rbNode) { n.parent = y })
}

// rotateRight performs a right rotation around x.
func (r rbtx) rotateRight(x tm.Object) {
	xn := r.node(x)
	y := xn.left
	yn := r.node(y)
	yr := yn.right
	r.mutate(x, func(n *rbNode) { n.left = yr })
	if yr != nil {
		r.mutate(yr, func(n *rbNode) { n.parent = x })
	}
	xp := xn.parent
	r.mutate(y, func(n *rbNode) { n.parent = xp; n.right = x })
	r.replaceChild(xp, x, y)
	r.mutate(x, func(n *rbNode) { n.parent = y })
}

func (r rbtx) isRed(o tm.Object) bool { return o != nil && r.node(o).red }

// Insert implements Set.
func (t *RBTree) Insert(th *tm.Thread, key int64) (bool, error) {
	added := false
	err := t.sys.Atomic(th, func(tx tm.Tx) error {
		added = t.InsertTx(tx, key, nil)
		return nil
	})
	return added, err
}

// InsertTx inserts key with an optional payload inside an existing
// transaction; it reports whether the key was absent.
func (t *RBTree) InsertTx(tx tm.Tx, key int64, val tm.Object) bool {
	r := rbtx{tx: tx, t: t, sys: t.sys}
	var parent tm.Object
	cur := r.rootObj()
	for cur != nil {
		n := r.node(cur)
		if n.key == key {
			return false
		}
		parent = cur
		if key < n.key {
			cur = n.left
		} else {
			cur = n.right
		}
	}
	z := t.sys.NewObject(&rbNode{key: key, red: true, parent: parent, val: val})
	if parent == nil {
		r.setRoot(z)
	} else {
		r.mutate(parent, func(n *rbNode) {
			if key < n.key {
				n.left = z
			} else {
				n.right = z
			}
		})
	}
	r.insertFixup(z)
	return true
}

// LookupTx returns key's payload inside an existing transaction.
func (t *RBTree) LookupTx(tx tm.Tx, key int64) (tm.Object, bool) {
	r := rbtx{tx: tx, t: t, sys: t.sys}
	cur := r.rootObj()
	for cur != nil {
		n := r.node(cur)
		if n.key == key {
			return n.val, true
		}
		if key < n.key {
			cur = n.left
		} else {
			cur = n.right
		}
	}
	return nil, false
}

// CeilingTx returns the smallest key ≥ key (with its payload) inside an
// existing transaction; found is false when no such key exists.
func (t *RBTree) CeilingTx(tx tm.Tx, key int64) (k int64, val tm.Object, found bool) {
	r := rbtx{tx: tx, t: t, sys: t.sys}
	cur := r.rootObj()
	for cur != nil {
		n := r.node(cur)
		switch {
		case n.key == key:
			return n.key, n.val, true
		case key < n.key:
			k, val, found = n.key, n.val, true
			cur = n.left
		default:
			cur = n.right
		}
	}
	return k, val, found
}

// insertFixup is CLRS RB-INSERT-FIXUP.
func (r rbtx) insertFixup(z tm.Object) {
	for {
		zp := r.node(z).parent
		if zp == nil || !r.node(zp).red {
			break
		}
		zpp := r.node(zp).parent // red parent is never the root
		zppn := r.node(zpp)
		if zp == zppn.left {
			uncle := zppn.right
			if r.isRed(uncle) {
				r.mutate(zp, func(n *rbNode) { n.red = false })
				r.mutate(uncle, func(n *rbNode) { n.red = false })
				r.mutate(zpp, func(n *rbNode) { n.red = true })
				z = zpp
				continue
			}
			if z == r.node(zp).right {
				z = zp
				r.rotateLeft(z)
				zp = r.node(z).parent
				zpp = r.node(zp).parent
			}
			r.mutate(zp, func(n *rbNode) { n.red = false })
			r.mutate(zpp, func(n *rbNode) { n.red = true })
			r.rotateRight(zpp)
		} else {
			uncle := zppn.left
			if r.isRed(uncle) {
				r.mutate(zp, func(n *rbNode) { n.red = false })
				r.mutate(uncle, func(n *rbNode) { n.red = false })
				r.mutate(zpp, func(n *rbNode) { n.red = true })
				z = zpp
				continue
			}
			if z == r.node(zp).left {
				z = zp
				r.rotateRight(z)
				zp = r.node(z).parent
				zpp = r.node(zp).parent
			}
			r.mutate(zp, func(n *rbNode) { n.red = false })
			r.mutate(zpp, func(n *rbNode) { n.red = true })
			r.rotateLeft(zpp)
		}
	}
	if root := r.rootObj(); root != nil && r.node(root).red {
		r.mutate(root, func(n *rbNode) { n.red = false })
	}
}

// transplant replaces subtree u (child of up) with v.
func (r rbtx) transplant(up, u, v tm.Object) {
	r.replaceChild(up, u, v)
	if v != nil {
		r.mutate(v, func(n *rbNode) { n.parent = up })
	}
}

// Delete implements Set (CLRS RB-DELETE with explicit parent threading so
// nil leaves never need a sentinel object).
func (t *RBTree) Delete(th *tm.Thread, key int64) (bool, error) {
	removed := false
	err := t.sys.Atomic(th, func(tx tm.Tx) error {
		removed = t.DeleteTx(tx, key)
		return nil
	})
	return removed, err
}

// DeleteTx removes key inside an existing transaction, reporting whether it
// was present.
func (t *RBTree) DeleteTx(tx tm.Tx, key int64) bool {
	{
		r := rbtx{tx: tx, t: t, sys: t.sys}
		z := r.rootObj()
		for z != nil {
			n := r.node(z)
			if n.key == key {
				break
			}
			if key < n.key {
				z = n.left
			} else {
				z = n.right
			}
		}
		if z == nil {
			return false
		}

		zn := r.node(z)
		var x, xp tm.Object // x (possibly nil) ends up under parent xp
		yRed := zn.red
		switch {
		case zn.left == nil:
			x, xp = zn.right, zn.parent
			r.transplant(zn.parent, z, zn.right)
		case zn.right == nil:
			x, xp = zn.left, zn.parent
			r.transplant(zn.parent, z, zn.left)
		default:
			// y = minimum of z's right subtree.
			y := zn.right
			for {
				l := r.node(y).left
				if l == nil {
					break
				}
				y = l
			}
			yn := r.node(y)
			yRed = yn.red
			x = yn.right
			if yn.parent == z {
				xp = y
			} else {
				xp = yn.parent
				r.transplant(yn.parent, y, yn.right)
				zr := r.node(z).right
				r.mutate(y, func(n *rbNode) { n.right = zr })
				r.mutate(zr, func(n *rbNode) { n.parent = y })
			}
			r.transplant(r.node(z).parent, z, y)
			zl := r.node(z).left
			zRed := r.node(z).red
			r.mutate(y, func(n *rbNode) { n.left = zl; n.red = zRed })
			r.mutate(zl, func(n *rbNode) { n.parent = y })
		}
		if !yRed {
			r.deleteFixup(x, xp)
		}
		// Detach the removed node so stale readers cannot wander.
		r.mutate(z, func(n *rbNode) { n.left, n.right, n.parent = nil, nil, nil })
		return true
	}
}

// deleteFixup is CLRS RB-DELETE-FIXUP; x may be nil (a black leaf), so its
// parent is threaded explicitly.
func (r rbtx) deleteFixup(x, xp tm.Object) {
	for xp != nil && !r.isRed(x) {
		xpn := r.node(xp)
		if x == xpn.left {
			w := xpn.right
			if r.isRed(w) {
				r.mutate(w, func(n *rbNode) { n.red = false })
				r.mutate(xp, func(n *rbNode) { n.red = true })
				r.rotateLeft(xp)
				w = r.node(xp).right
			}
			wn := r.node(w)
			if !r.isRed(wn.left) && !r.isRed(wn.right) {
				r.mutate(w, func(n *rbNode) { n.red = true })
				x = xp
				xp = r.node(x).parent
				continue
			}
			if !r.isRed(wn.right) {
				wl := wn.left
				r.mutate(wl, func(n *rbNode) { n.red = false })
				r.mutate(w, func(n *rbNode) { n.red = true })
				r.rotateRight(w)
				w = r.node(xp).right
			}
			xpRed := r.node(xp).red
			r.mutate(w, func(n *rbNode) { n.red = xpRed })
			r.mutate(xp, func(n *rbNode) { n.red = false })
			wr := r.node(w).right
			r.mutate(wr, func(n *rbNode) { n.red = false })
			r.rotateLeft(xp)
			return
		}
		w := xpn.left
		if r.isRed(w) {
			r.mutate(w, func(n *rbNode) { n.red = false })
			r.mutate(xp, func(n *rbNode) { n.red = true })
			r.rotateRight(xp)
			w = r.node(xp).left
		}
		wn := r.node(w)
		if !r.isRed(wn.left) && !r.isRed(wn.right) {
			r.mutate(w, func(n *rbNode) { n.red = true })
			x = xp
			xp = r.node(x).parent
			continue
		}
		if !r.isRed(wn.left) {
			wr := wn.right
			r.mutate(wr, func(n *rbNode) { n.red = false })
			r.mutate(w, func(n *rbNode) { n.red = true })
			r.rotateLeft(w)
			w = r.node(xp).left
		}
		xpRed := r.node(xp).red
		r.mutate(w, func(n *rbNode) { n.red = xpRed })
		r.mutate(xp, func(n *rbNode) { n.red = false })
		wl := r.node(w).left
		r.mutate(wl, func(n *rbNode) { n.red = false })
		r.rotateRight(xp)
		return
	}
	if x != nil {
		r.mutate(x, func(n *rbNode) { n.red = false })
	}
}

// Contains implements Set.
func (t *RBTree) Contains(th *tm.Thread, key int64) (bool, error) {
	found := false
	err := t.sys.Atomic(th, func(tx tm.Tx) error {
		r := rbtx{tx: tx, t: t, sys: t.sys}
		cur := r.rootObj()
		for cur != nil {
			n := r.node(cur)
			if n.key == key {
				found = true
				return nil
			}
			if key < n.key {
				cur = n.left
			} else {
				cur = n.right
			}
		}
		found = false
		return nil
	})
	return found, err
}

// Snapshot implements Set.
func (t *RBTree) Snapshot(th *tm.Thread) ([]int64, error) {
	var out []int64
	err := t.sys.Atomic(th, func(tx tm.Tx) error {
		r := rbtx{tx: tx, t: t, sys: t.sys}
		out = out[:0]
		var walk func(o tm.Object)
		walk = func(o tm.Object) {
			if o == nil {
				return
			}
			n := r.node(o)
			walk(n.left)
			out = append(out, n.key)
			walk(n.right)
		}
		walk(r.rootObj())
		return nil
	})
	return out, err
}

// CheckInvariants verifies the red-black properties in one transaction:
// sorted order, no red node with a red child, and equal black height on
// every path. It returns the black height.
func (t *RBTree) CheckInvariants(th *tm.Thread) (int, error) {
	bh := 0
	err := t.sys.Atomic(th, func(tx tm.Tx) error {
		r := rbtx{tx: tx, t: t, sys: t.sys}
		var check func(o tm.Object, min, max int64) (int, error)
		check = func(o tm.Object, min, max int64) (int, error) {
			if o == nil {
				return 1, nil
			}
			n := r.node(o)
			if n.key <= min || n.key >= max {
				return 0, fmt.Errorf("order violation at key %d", n.key)
			}
			if n.red && (r.isRed(n.left) || r.isRed(n.right)) {
				return 0, fmt.Errorf("red-red violation at key %d", n.key)
			}
			lh, err := check(n.left, min, n.key)
			if err != nil {
				return 0, err
			}
			rh, err := check(n.right, n.key, max)
			if err != nil {
				return 0, err
			}
			if lh != rh {
				return 0, fmt.Errorf("black-height mismatch at key %d: %d vs %d", n.key, lh, rh)
			}
			if !n.red {
				lh++
			}
			return lh, nil
		}
		root := r.rootObj()
		if root != nil && r.node(root).red {
			return fmt.Errorf("red root")
		}
		h, err := check(root, -1<<63, 1<<62)
		bh = h
		return err
	})
	return bh, err
}

var _ Set = (*RBTree)(nil)
