package bench

import (
	"sort"

	"nztm/internal/tm"
)

// LinkedList is the paper's linkedlist microbenchmark: "a concurrent set
// implemented using a single sorted linked list" (§4.2). Every traversal
// opens each node for reading, so transactions have large read sets and
// conflict often — the high-contention end of the microbenchmarks.
type LinkedList struct {
	sys  tm.System
	head tm.Object // sentinel; its next points at the first element

	// earlyRelease enables DSTM-style hand-over-hand traversal: nodes more
	// than two behind the cursor are released, shrinking the read set from
	// O(position) to O(1). Safe because Delete opens both unlinked node and
	// its predecessor for writing, so the two-node window a transaction
	// still holds cannot be cut out from under it.
	earlyRelease bool
}

// NewLinkedList creates an empty sorted-list set.
func NewLinkedList(sys tm.System) *LinkedList {
	return &LinkedList{
		sys:  sys,
		head: sys.NewObject(&listNode{key: -1 << 62}),
	}
}

// NewLinkedListEarlyRelease creates a sorted-list set whose traversals
// release reads behind a two-node window, as DSTM's list benchmark does.
// It requires a System whose transactions implement tm.Releaser.
func NewLinkedListEarlyRelease(sys tm.System) *LinkedList {
	l := NewLinkedList(sys)
	l.earlyRelease = true
	return l
}

// locate walks to the insertion point for key: prev is the last node with
// a smaller key, cur its successor object (nil at the tail). Runs inside tx.
func (l *LinkedList) locate(tx tm.Tx, key int64) (prev tm.Object, cur tm.Object, curKey int64) {
	var rel tm.Releaser
	if l.earlyRelease {
		rel, _ = tx.(tm.Releaser)
	}
	prev = l.head
	cur = tx.Read(prev).(*listNode).next
	var trail tm.Object // the node behind prev, releasable once we advance
	for cur != nil {
		n := tx.Read(cur).(*listNode)
		if n.key >= key {
			return prev, cur, n.key
		}
		if rel != nil && trail != nil {
			rel.Release(trail)
		}
		trail, prev, cur = prev, cur, n.next
	}
	return prev, nil, 0
}

// Insert implements Set.
func (l *LinkedList) Insert(th *tm.Thread, key int64) (bool, error) {
	added := false
	err := l.sys.Atomic(th, func(tx tm.Tx) error {
		prev, cur, curKey := l.locate(tx, key)
		if cur != nil && curKey == key {
			added = false
			return nil
		}
		fresh := l.sys.NewObject(&listNode{key: key, next: cur})
		tx.Update(prev, func(d tm.Data) { d.(*listNode).next = fresh })
		added = true
		return nil
	})
	return added, err
}

// Delete implements Set.
func (l *LinkedList) Delete(th *tm.Thread, key int64) (bool, error) {
	removed := false
	err := l.sys.Atomic(th, func(tx tm.Tx) error {
		prev, cur, curKey := l.locate(tx, key)
		if cur == nil || curKey != key {
			removed = false
			return nil
		}
		next := tx.Read(cur).(*listNode).next
		tx.Update(prev, func(d tm.Data) { d.(*listNode).next = next })
		// Open the unlinked node for writing too, so concurrent readers
		// traversing to it are serialised against the removal.
		tx.Update(cur, func(d tm.Data) { d.(*listNode).next = nil })
		removed = true
		return nil
	})
	return removed, err
}

// Contains implements Set.
func (l *LinkedList) Contains(th *tm.Thread, key int64) (bool, error) {
	found := false
	err := l.sys.Atomic(th, func(tx tm.Tx) error {
		_, cur, curKey := l.locate(tx, key)
		found = cur != nil && curKey == key
		return nil
	})
	return found, err
}

// Snapshot implements Set.
func (l *LinkedList) Snapshot(th *tm.Thread) ([]int64, error) {
	var out []int64
	err := l.sys.Atomic(th, func(tx tm.Tx) error {
		out = out[:0]
		cur := tx.Read(l.head).(*listNode).next
		for cur != nil {
			n := tx.Read(cur).(*listNode)
			out = append(out, n.key)
			cur = n.next
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		panic("bench: linked list lost its sort order")
	}
	return out, nil
}

var _ Set = (*LinkedList)(nil)
