// Package bench implements the paper's microbenchmarks (§4.2): concurrent
// integer sets backed by a sorted linked list, a chained hash table, and a
// red-black tree, all written once against the tm.System interface so that
// every TM implementation in the repository runs the identical workload.
//
// Workload parameters follow the paper: keys are drawn from 0–255; the
// low-contention mix is 1:1:8 insert:delete:lookup and the high-contention
// mix is 1:1:1.
package bench

import (
	"fmt"

	"nztm/internal/tm"
)

// Set is a transactional integer set.
type Set interface {
	// Insert adds key; it reports whether the key was absent.
	Insert(th *tm.Thread, key int64) (bool, error)
	// Delete removes key; it reports whether the key was present.
	Delete(th *tm.Thread, key int64) (bool, error)
	// Contains reports membership.
	Contains(th *tm.Thread, key int64) (bool, error)
	// Snapshot returns the sorted contents (single transaction; testing).
	Snapshot(th *tm.Thread) ([]int64, error)
}

// Mix describes an operation mix in parts (insert:delete:lookup).
type Mix struct {
	Insert, Delete, Lookup int
}

// Paper mixes (§4.2).
var (
	LowContention  = Mix{1, 1, 8}
	HighContention = Mix{1, 1, 1}
)

// String implements fmt.Stringer.
func (m Mix) String() string {
	return fmt.Sprintf("%d:%d:%d", m.Insert, m.Delete, m.Lookup)
}

// Pick selects an operation: 0=insert, 1=delete, 2=lookup.
func (m Mix) Pick(r uint64) int {
	total := m.Insert + m.Delete + m.Lookup
	v := int(r % uint64(total))
	switch {
	case v < m.Insert:
		return 0
	case v < m.Insert+m.Delete:
		return 1
	default:
		return 2
	}
}

// nodeWords is the simulated size of a list/hash node (key + next,
// padded — the paper pads objects so most fit one cache line with their
// metadata, §4.4.2).
const nodeWords = 4

// listNode is a sorted-list node. next is nil at the tail.
type listNode struct {
	key  int64
	next tm.Object
}

// Clone implements tm.Data.
func (n *listNode) Clone() tm.Data { return &listNode{key: n.key, next: n.next} }

// CopyFrom implements tm.Data.
func (n *listNode) CopyFrom(src tm.Data) {
	s := src.(*listNode)
	n.key, n.next = s.key, s.next
}

// Words implements tm.Data.
func (n *listNode) Words() int { return nodeWords }
