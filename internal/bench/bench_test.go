package bench

import (
	"sync"
	"testing"
	"testing/quick"

	"nztm/internal/core"
	"nztm/internal/dstm"
	"nztm/internal/glock"
	"nztm/internal/tm"
)

func systems(threads int) []tm.System {
	return []tm.System{
		core.NewNZSTM(tm.NewRealWorld(), threads),
		core.NewSCSS(tm.NewRealWorld(), threads),
		dstm.New(tm.NewRealWorld(), dstm.Config{Threads: threads}),
		glock.New(tm.NewRealWorld()),
	}
}

func sets(sys tm.System) map[string]Set {
	return map[string]Set{
		"linkedlist": NewLinkedList(sys),
		"hashtable":  NewHashTable(sys, 64),
		"redblack":   NewRBTree(sys),
	}
}

func thread(id int) *tm.Thread {
	return tm.NewThread(id, tm.NewRealEnv(id, tm.NewRealWorld()))
}

// Every set implementation must agree with a map oracle on a random
// single-threaded operation sequence, across TM systems.
func TestSetsMatchOracle(t *testing.T) {
	for _, sys := range systems(1) {
		for name, set := range sets(sys) {
			t.Run(sys.Name()+"/"+name, func(t *testing.T) {
				th := thread(0)
				oracle := map[int64]bool{}
				rng := uint64(7)
				next := func() uint64 {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					return rng
				}
				for i := 0; i < 3000; i++ {
					key := int64(next() % 128)
					switch next() % 3 {
					case 0:
						got, err := set.Insert(th, key)
						if err != nil {
							t.Fatal(err)
						}
						if got == oracle[key] {
							t.Fatalf("step %d: insert(%d) = %v, oracle has=%v", i, key, got, oracle[key])
						}
						oracle[key] = true
					case 1:
						got, err := set.Delete(th, key)
						if err != nil {
							t.Fatal(err)
						}
						if got != oracle[key] {
							t.Fatalf("step %d: delete(%d) = %v, oracle %v", i, key, got, oracle[key])
						}
						delete(oracle, key)
					case 2:
						got, err := set.Contains(th, key)
						if err != nil {
							t.Fatal(err)
						}
						if got != oracle[key] {
							t.Fatalf("step %d: contains(%d) = %v, oracle %v", i, key, got, oracle[key])
						}
					}
				}
				snap, err := set.Snapshot(th)
				if err != nil {
					t.Fatal(err)
				}
				if len(snap) != len(oracle) {
					t.Fatalf("snapshot has %d keys, oracle %d", len(snap), len(oracle))
				}
				for _, k := range snap {
					if !oracle[k] {
						t.Fatalf("snapshot contains %d, oracle does not", k)
					}
				}
			})
		}
	}
}

// Concurrent torture: per-thread key partitions let each thread verify its
// own operations' results exactly, while sharing the same structure.
func TestSetsConcurrentPartitionedKeys(t *testing.T) {
	const workers, each = 6, 250
	for _, sys := range systems(workers) {
		for name, set := range sets(sys) {
			t.Run(sys.Name()+"/"+name, func(t *testing.T) {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						th := thread(id)
						base := int64(id * 1000)
						mine := map[int64]bool{}
						rng := uint64(id*31 + 17)
						next := func() uint64 {
							rng ^= rng << 13
							rng ^= rng >> 7
							rng ^= rng << 17
							return rng
						}
						for i := 0; i < each; i++ {
							key := base + int64(next()%40)
							switch next() % 3 {
							case 0:
								got, err := set.Insert(th, key)
								if err != nil {
									t.Error(err)
									return
								}
								if got == mine[key] {
									t.Errorf("insert(%d) inconsistent", key)
									return
								}
								mine[key] = true
							case 1:
								got, err := set.Delete(th, key)
								if err != nil {
									t.Error(err)
									return
								}
								if got != mine[key] {
									t.Errorf("delete(%d) inconsistent", key)
									return
								}
								delete(mine, key)
							case 2:
								got, err := set.Contains(th, key)
								if err != nil {
									t.Error(err)
									return
								}
								if got != mine[key] {
									t.Errorf("contains(%d) inconsistent", key)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// Concurrent shared-key torture on the red-black tree, with invariant
// checks midway and at the end.
func TestRBTreeInvariantsUnderContention(t *testing.T) {
	const workers, each = 6, 150
	sys := core.NewNZSTM(tm.NewRealWorld(), workers)
	tree := NewRBTree(sys)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := thread(id)
			rng := uint64(id + 99)
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < each; i++ {
				key := int64(next() % 256)
				switch next() % 3 {
				case 0:
					if _, err := tree.Insert(th, key); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := tree.Delete(th, key); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := tree.Contains(th, key); err != nil {
						t.Error(err)
						return
					}
				}
				if i%50 == 25 {
					if _, err := tree.CheckInvariants(th); err != nil {
						t.Errorf("mid-run invariant: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := tree.CheckInvariants(thread(0)); err != nil {
		t.Fatalf("final invariant: %v", err)
	}
}

// Property test: any sequence of inserts and deletes leaves a valid
// red-black tree matching a map oracle.
func TestRBTreeQuick(t *testing.T) {
	sys := glock.New(tm.NewRealWorld()) // fastest system; tree logic is the target
	th := thread(0)
	f := func(ops []int16) bool {
		tree := NewRBTree(sys)
		oracle := map[int64]bool{}
		for _, op := range ops {
			key := int64(op) % 64
			if key < 0 {
				key = -key
			}
			if op%2 == 0 {
				got, err := tree.Insert(th, key)
				if err != nil || got == oracle[key] {
					return false
				}
				oracle[key] = true
			} else {
				got, err := tree.Delete(th, key)
				if err != nil || got != oracle[key] {
					return false
				}
				delete(oracle, key)
			}
			if _, err := tree.CheckInvariants(th); err != nil {
				t.Logf("invariant broken after op %d (key %d): %v", op, key, err)
				return false
			}
		}
		snap, err := tree.Snapshot(th)
		if err != nil || len(snap) != len(oracle) {
			return false
		}
		for i := 1; i < len(snap); i++ {
			if snap[i-1] >= snap[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMixPick(t *testing.T) {
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[LowContention.Pick(uint64(i))]++
	}
	// 1:1:8 → lookups ≈ 80%.
	if counts[2] < 7000 || counts[2] > 9000 {
		t.Errorf("lookup share = %d/10000, want ≈8000", counts[2])
	}
	if LowContention.String() != "1:1:8" || HighContention.String() != "1:1:1" {
		t.Error("mix strings wrong")
	}
}

// The early-release list must behave identically to the plain list against
// the oracle, and under concurrency.
func TestEarlyReleaseListMatchesOracle(t *testing.T) {
	for _, mode := range []string{"visible", "invisible"} {
		t.Run(mode, func(t *testing.T) {
			cfg := core.DefaultConfig(core.NZ, 1)
			if mode == "invisible" {
				cfg.Readers = core.InvisibleReaders
			}
			sys := core.New(tm.NewRealWorld(), cfg)
			set := NewLinkedListEarlyRelease(sys)
			th := thread(0)
			oracle := map[int64]bool{}
			rng := uint64(31)
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < 1500; i++ {
				key := int64(next() % 96)
				switch next() % 3 {
				case 0:
					got, err := set.Insert(th, key)
					if err != nil || got == oracle[key] {
						t.Fatalf("insert(%d)=%v err=%v oracle=%v", key, got, err, oracle[key])
					}
					oracle[key] = true
				case 1:
					got, err := set.Delete(th, key)
					if err != nil || got != oracle[key] {
						t.Fatalf("delete(%d)=%v err=%v oracle=%v", key, got, err, oracle[key])
					}
					delete(oracle, key)
				default:
					got, err := set.Contains(th, key)
					if err != nil || got != oracle[key] {
						t.Fatalf("contains(%d)=%v err=%v oracle=%v", key, got, err, oracle[key])
					}
				}
			}
		})
	}
}

func TestEarlyReleaseListConcurrent(t *testing.T) {
	const workers, each = 6, 200
	sys := core.NewNZSTM(tm.NewRealWorld(), workers)
	set := NewLinkedListEarlyRelease(sys)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := thread(id)
			base := int64(id * 1000)
			mine := map[int64]bool{}
			rng := uint64(id*73 + 5)
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < each; i++ {
				key := base + int64(next()%50)
				if next()%2 == 0 {
					got, err := set.Insert(th, key)
					if err != nil || got == mine[key] {
						t.Errorf("insert(%d) inconsistent (%v, %v)", key, got, err)
						return
					}
					mine[key] = true
				} else {
					got, err := set.Delete(th, key)
					if err != nil || got != mine[key] {
						t.Errorf("delete(%d) inconsistent (%v, %v)", key, got, err)
						return
					}
					delete(mine, key)
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := set.Snapshot(thread(0)); err != nil {
		t.Fatal(err)
	}
}

// Early release lets a writer proceed without ever requesting the reader's
// abort: the released registration simply disappears.
func TestEarlyReleaseFreesWriters(t *testing.T) {
	sys := core.NewNZSTM(tm.NewRealWorld(), 2)
	o := sys.NewObject(tm.NewInts(1))
	th0, th1 := thread(0), thread(1)
	release := make(chan struct{})
	released := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(th0, func(tx tm.Tx) error {
			_ = tx.Read(o)
			tx.(tm.Releaser).Release(o)
			close(released)
			<-release // stay active, but with no registration left
			return nil
		})
	}()
	<-released
	if err := sys.Atomic(th1, func(tx tm.Tx) error {
		tx.Update(o, func(d tm.Data) { d.(*tm.Ints).V[0] = 7 })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if r := sys.Stats().AbortRequests.Load(); r != 0 {
		t.Fatalf("writer sent %d abort requests despite the release", r)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
