// Replicated serving benchmark (-replicated): self-hosts a 3-node
// replication cluster (1 primary + 2 bounded-staleness read replicas,
// both planes over real loopback TCP) and a single-node control, and
// drives the same workload through the replica-aware cluster client
// against each: dedicated readers running a closed loop under a 250ms
// staleness budget, plus a writer pool paced to a fixed offered rate
// so both configurations carry an identical replicated-write stream
// (closed-loop writers would self-throttle to whichever config's write
// path is slower and the two sides would no longer run the same load).
//
// The interesting number is aggregate read throughput: reads route to
// the replicas (round-robin), so the replicas absorb the entire read
// fleet while the primary pays only the write stream. On a multi-core
// host that is added capacity outright — each replica serves reads on
// cores the single node doesn't have. On a single-core host (this CI
// box) the comparison instead prices the replication tax: both sides
// share one core, the cluster does strictly more work per write (ship,
// double-apply, ack), and the read number shows how much of the solo
// capacity survives — while buying failover, redundancy, and commit
// stalls hidden from readers (replicas serve applied state without the
// primary's fsync in the read path).
package main

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nztm/internal/kv"
	"nztm/internal/repl"
	"nztm/internal/server"
	"nztm/internal/wal"
)

// loadReplNode is one in-process cluster member.
type loadReplNode struct {
	backend *kv.Backend
	store   *kv.Store
	node    *repl.Node
	srv     *server.Server
	ln      net.Listener
	dir     string
	done    chan error
}

func (n *loadReplNode) close() {
	if n.srv != nil {
		n.srv.Shutdown(5 * time.Second)
		<-n.done
	}
	if n.node != nil {
		n.node.Close()
	}
	if n.store != nil {
		n.store.Close()
	}
	if n.dir != "" {
		os.RemoveAll(n.dir)
	}
}

// startLoadReplNode boots one member. primaryFrom "" starts it as the
// primary; ack names the commit-gate policy (a 1-node "cluster" must
// use AckNone — there is no follower to ack). The primary (and the
// solo control) runs fsync=always — the full-durability configuration
// whose commit stalls this benchmark exists to price — while followers
// run fsync=interval: a follower's durability is the primary's already
// fsynced log plus cluster redundancy, so it may mark applied frames
// stable immediately instead of re-paying the fsync on the read path.
func startLoadReplNode(id int, kvAddr, replAddr string, peers []string, primaryFrom, ack string, cfg config) (*loadReplNode, error) {
	n := &loadReplNode{done: make(chan error, 1)}
	fail := func(err error) (*loadReplNode, error) {
		n.close()
		return nil, err
	}
	backend, err := kv.OpenBackend("nzstm", cfg.threads)
	if err != nil {
		return fail(err)
	}
	n.backend = backend
	n.dir, err = os.MkdirTemp("", fmt.Sprintf("nztm-load-repl-n%d-", id))
	if err != nil {
		return fail(err)
	}
	policy := wal.FsyncAlways
	if primaryFrom != "" {
		policy = wal.FsyncInterval
	}
	n.store, _, err = kv.NewDurable(backend.Sys, cfg.shards, cfg.buckets, kv.Durability{
		Dir:           n.dir,
		Fsync:         policy,
		FsyncInterval: 10 * time.Millisecond,
		SnapshotEvery: 500 * time.Millisecond,
		NewThread:     backend.NewThread,
	})
	if err != nil {
		return fail(err)
	}
	n.node, err = repl.Start(n.store, repl.Config{
		NodeID:         id,
		KVAddr:         kvAddr,
		ReplAddr:       replAddr,
		Peers:          peers,
		PrimaryFrom:    primaryFrom,
		AckPolicy:      ack,
		HeartbeatEvery: 100 * time.Millisecond,
		LeaseTimeout:   5 * time.Second,
		NewThread:      backend.NewThread,
	})
	if err != nil {
		return fail(err)
	}
	n.srv = server.New(n.store, backend.Reg, server.Config{
		MaxAttempts:    100_000,
		RequestTimeout: 5 * time.Second,
		CheckRequest:   n.node.CheckRequest,
	})
	n.ln, err = net.Listen("tcp", kvAddr)
	if err != nil {
		return fail(err)
	}
	go func() { n.done <- n.srv.Serve(n.ln) }()
	return n, nil
}

// measureReplicated runs the replicated comparison and returns the
// single-node control followed by the 3-node cluster result.
func measureReplicated(cfg config) ([]result, error) {
	// The replicated profile splits clients: dedicated readers (what
	// replicas absorb) plus a writer pool keeping a continuous replicated
	// write stream flowing.

	freeAddr := func() (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr, nil
	}

	// Single-node control: same stack, same client, no followers.
	soloKV, err := freeAddr()
	if err != nil {
		return nil, err
	}
	soloRepl, err := freeAddr()
	if err != nil {
		return nil, err
	}
	solo, err := startLoadReplNode(0, soloKV, soloRepl, nil, "", repl.AckNone, cfg)
	if err != nil {
		return nil, fmt.Errorf("replicated bench: single-node control: %w", err)
	}
	fmt.Printf("nztm-load: measuring NZSTM+repl(1 node) on %s...\n", soloKV)
	soloRes, err := measureCluster("NZSTM+repl(1node)", []string{soloKV}, cfg)
	solo.close()
	if err != nil {
		return nil, err
	}
	// Both phases share one process: collect the control phase's garbage
	// now so the cluster phase doesn't pay its GC debt.
	runtime.GC()

	// 3-node cluster: node 0 primary, 1 and 2 replicas, ack=one.
	var kvAddrs, replAddrs []string
	for i := 0; i < 3; i++ {
		ka, err := freeAddr()
		if err != nil {
			return nil, err
		}
		ra, err := freeAddr()
		if err != nil {
			return nil, err
		}
		kvAddrs, replAddrs = append(kvAddrs, ka), append(replAddrs, ra)
	}
	var nodes []*loadReplNode
	defer func() {
		for _, n := range nodes {
			n.close()
		}
	}()
	for i := 0; i < 3; i++ {
		var peers []string
		for j := 0; j < 3; j++ {
			if j != i {
				peers = append(peers, replAddrs[j])
			}
		}
		primaryFrom := ""
		if i > 0 {
			primaryFrom = replAddrs[0]
		}
		n, err := startLoadReplNode(i, kvAddrs[i], replAddrs[i], peers, primaryFrom, repl.AckOne, cfg)
		if err != nil {
			return nil, fmt.Errorf("replicated bench: node %d: %w", i, err)
		}
		nodes = append(nodes, n)
	}
	fmt.Printf("nztm-load: measuring NZSTM+repl(3 nodes, reads@replicas) on %v...\n", kvAddrs)
	clusterRes, err := measureCluster("NZSTM+repl(3nodes,reads@replicas)", kvAddrs, cfg)
	if err != nil {
		return nil, err
	}

	if soloRes.ReadThroughput > 0 {
		fmt.Printf("\nreplicated/single read throughput: %.2fx (%.0f vs %.0f reads/s; reads served by 2 replicas)\n",
			clusterRes.ReadThroughput/soloRes.ReadThroughput,
			clusterRes.ReadThroughput, soloRes.ReadThroughput)
	}
	return []result{soloRes, clusterRes}, nil
}

// clusterWriteRate is the fixed offered write rate (writes/s, summed
// across the writer pool) both configurations carry. Low enough that a
// 1-core host can replicate it without starving readers, high enough
// that every read races a live apply stream.
const clusterWriteRate = 250

// measureCluster drives cfg.clients dedicated readers in a closed loop
// through repl.Cluster clients (bounded-staleness replica reads, no
// read-your-writes coupling — they never write) plus cfg.clients/4
// dedicated writers paced to clusterWriteRate in aggregate. Latency
// quantiles cover reads only; write latency would otherwise drown the
// read distribution whenever the write path is the expensive one.
func measureCluster(label string, addrs []string, cfg config) (result, error) {
	keys := make([]string, cfg.keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k:%06d", i)
	}
	value := make([]byte, cfg.valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	// Preload through the primary in batches.
	setup, err := repl.DialCluster(repl.ClusterConfig{Addrs: addrs, MaxLagMs: server.NoLagBudget})
	if err != nil {
		return result{}, err
	}
	for i := 0; i < len(keys); i += 16 {
		end := i + 16
		if end > len(keys) {
			end = len(keys)
		}
		ops := make([]kv.Op, 0, end-i)
		for _, k := range keys[i:end] {
			ops = append(ops, kv.Op{Kind: kv.OpPut, Key: k, Value: value})
		}
		if _, err := setup.Write(ops); err != nil {
			setup.Close()
			return result{}, fmt.Errorf("preload: %w", err)
		}
	}
	setup.Close()

	var (
		recording atomic.Bool
		stop      atomic.Bool
		reads     atomic.Uint64
		writes    atomic.Uint64
		failures  atomic.Uint64
		lat       server.Histogram
		wg        sync.WaitGroup
		errs      = make(chan error, 2*cfg.clients+1)
	)
	nWriters := cfg.clients / 4
	if nWriters < 1 {
		nWriters = 1
	}
	// Each writer owes a write every writeEvery to hit the aggregate
	// offered rate.
	writeEvery := time.Duration(nWriters) * time.Second / clusterWriteRate
	worker := func(id int, isReader bool) {
		defer wg.Done()
		// Readers tolerate 250ms of staleness and carry no token (they
		// never write), so replicas serve them without cross-node
		// synchronization; writers go to the primary under ack=one.
		cl, err := repl.DialCluster(repl.ClusterConfig{Addrs: addrs, MaxLagMs: 250})
		if err != nil {
			errs <- err
			return
		}
		defer cl.Close()
		rng := uint64(id+1)*0x9e3779b97f4a7c15 + 11
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for !stop.Load() {
			start := time.Now()
			if isReader {
				_, err = cl.Read([]kv.Op{{Kind: kv.OpGet, Key: keys[next()%uint64(len(keys))]}})
			} else {
				_, err = cl.Write([]kv.Op{{Kind: kv.OpPut, Key: keys[next()%uint64(len(keys))], Value: value}})
			}
			if stop.Load() {
				return
			}
			if err != nil {
				if recording.Load() {
					failures.Add(1)
				}
				continue
			}
			if recording.Load() {
				if isReader {
					reads.Add(1)
					lat.Observe(time.Since(start))
				} else {
					writes.Add(1)
				}
			}
			if !isReader {
				// Paced, not closed-loop: sleep off the rest of this slot so
				// the offered write rate is the same in every configuration.
				if spent := time.Since(start); spent < writeEvery {
					time.Sleep(writeEvery - spent)
				}
			}
		}
	}
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go worker(w, true)
	}
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go worker(cfg.clients+w, false)
	}

	time.Sleep(cfg.warmup)
	recording.Store(true)
	measureStart := time.Now()
	time.Sleep(cfg.duration)
	recording.Store(false)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return result{}, err
	default:
	}

	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	total := reads.Load() + writes.Load()
	return result{
		System:         label,
		Fsync:          "always@primary",
		Clients:        cfg.clients,
		DurationS:      elapsed.Seconds(),
		Requests:       total,
		Failures:       failures.Load(),
		Throughput:     float64(total) / elapsed.Seconds(),
		ReadThroughput: float64(reads.Load()) / elapsed.Seconds(),
		P50Us:          us(lat.Quantile(0.50)),
		P95Us:          us(lat.Quantile(0.95)),
		P99Us:          us(lat.Quantile(0.99)),
		MaxUs:          us(lat.Max()),
		MeanUs:         us(lat.Mean()),
	}, nil
}
