// nztm-load is a closed-loop load generator for nztm-server: it drives N
// concurrent clients over real TCP sockets against one or more backing TM
// systems and reports throughput and latency percentiles per system — the
// paper's Figure 4 comparison (NZSTM vs a single global lock) restated in
// wall-clock serving form. Results land in a machine-readable JSON file
// (BENCH_kv.json) to seed the repo's performance trajectory.
//
// Usage:
//
//	nztm-load                                  # self-host: nzstm vs glock
//	nztm-load -systems nzstm,bzstm,glock -clients 16 -duration 3s
//	nztm-load -addr host:7420 -duration 5s     # drive an external server
//	nztm-load -connections 8,64,512 -executors 8   # M:N scheduler scaling curve
//	nztm-load -crossover                       # adaptive-vs-fixed regime matrix
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nztm/internal/adaptive"
	"nztm/internal/kv"
	"nztm/internal/server"
	"nztm/internal/tm"
	"nztm/internal/trace"
	"nztm/internal/wal"
)

type config struct {
	clients   int
	duration  time.Duration
	warmup    time.Duration
	keys      int
	valueSize int
	readFrac  float64
	batchFrac float64
	batchSize int
	shards    int
	buckets   int
	threads   int
	executors int
	// zipfTheta > 0 draws single-key and RMW keys from a zipfian(theta)
	// distribution over the keyset instead of uniformly.
	zipfTheta float64
	// rmwFrac of requests are atomic read-modify-writes ([GET k, PUT k])
	// on one key — the contention-amplifying shape under skew.
	rmwFrac float64
}

// result is one system's measurement, serialised into BENCH_kv.json.
type result struct {
	System string `json:"system"`
	// Fsync names the WAL sync policy for crash-durable runs (-fsync);
	// empty for the memory-only baselines.
	Fsync   string `json:"wal_fsync,omitempty"`
	Clients int    `json:"clients"`
	// Executors is the server's M:N scheduler pool size when the run
	// pinned it (-executors / -connections sweep); absent otherwise.
	Executors  int     `json:"executors,omitempty"`
	DurationS  float64 `json:"duration_sec"`
	Requests   uint64  `json:"requests"`
	Failures   uint64  `json:"failures"`
	Throughput float64 `json:"throughput_req_per_sec"`
	// ReadThroughput is the GET-only rate for replicated runs, where
	// reads route to replicas (absent elsewhere).
	ReadThroughput float64 `json:"read_req_per_sec,omitempty"`
	P50Us          float64 `json:"p50_us"`
	P95Us          float64 `json:"p95_us"`
	P99Us          float64 `json:"p99_us"`
	MaxUs          float64 `json:"max_us"`
	MeanUs         float64 `json:"mean_us"`
	// Server-side kv commit-latency histogram percentiles (the same
	// distribution /metricsz exports as nztm_kv_commit_latency_seconds;
	// absent for -addr runs, which have no in-process store).
	CommitP50Us float64 `json:"commit_p50_us,omitempty"`
	CommitP95Us float64 `json:"commit_p95_us,omitempty"`
	CommitP99Us float64 `json:"commit_p99_us,omitempty"`
	// TM counters over the measured interval (absent for -addr runs).
	Commits    uint64  `json:"tm_commits,omitempty"`
	Aborts     uint64  `json:"tm_aborts,omitempty"`
	AbortRate  float64 `json:"tm_abort_rate,omitempty"`
	Inflations uint64  `json:"tm_inflations,omitempty"`
	// Adaptive-facade mode activity over the run (absent for fixed
	// backends): total switches in each direction plus how many shard
	// groups ended the run pessimistic.
	SwitchesToPes  uint64 `json:"adaptive_switches_to_pessimistic,omitempty"`
	SwitchesToOpt  uint64 `json:"adaptive_switches_to_optimistic,omitempty"`
	FinalPesGroups int    `json:"adaptive_final_pessimistic_groups,omitempty"`
	// ZipfTheta is the key-skew of this particular run (0 = uniform);
	// crossover rows carry it so regimes are self-describing.
	ZipfTheta float64 `json:"zipf_theta,omitempty"`
	RMWFrac   float64 `json:"rmw_frac,omitempty"`
	// Stages is the server-side per-stage latency attribution from the
	// span timelines (absent for -addr runs): where request wall time
	// went across decode→queue→executor→TM→WAL→fsync→repl→respond.
	Stages []stageStat `json:"stages,omitempty"`
	// StageCoverage is summed stage time over summed end-to-end span
	// time: the fraction of measured request latency the stage
	// breakdown attributes (1.0 = the stages partition every span).
	StageCoverage float64 `json:"stage_coverage,omitempty"`
}

// stageStat is one pipeline stage's latency contribution.
type stageStat struct {
	Stage   string  `json:"stage"`
	Count   uint64  `json:"count"`
	MeanUs  float64 `json:"mean_us"`
	P99Us   float64 `json:"p99_us"`
	TotalMs float64 `json:"total_ms"`
}

type benchFile struct {
	Benchmark string   `json:"benchmark"`
	When      string   `json:"when"`
	Clients   int      `json:"clients"`
	Keys      int      `json:"keys"`
	ValueSize int      `json:"value_size"`
	ReadFrac  float64  `json:"read_frac"`
	BatchFrac float64  `json:"batch_frac"`
	BatchSize int      `json:"batch_size"`
	Shards    int      `json:"shards"`
	Buckets   int      `json:"buckets_per_shard"`
	Threads   int      `json:"threads"`
	Results   []result `json:"results"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "drive an already-running server at this address instead of self-hosting")
		systems  = flag.String("systems", "nzstm,glock", "comma-separated backends to self-host and compare: "+strings.Join(kv.BackendNames(), ", "))
		clients  = flag.Int("clients", 8, "concurrent client connections")
		duration = flag.Duration("duration", 2*time.Second, "measured run time per system")
		warmup   = flag.Duration("warmup", 300*time.Millisecond, "unmeasured warmup per system")
		// The default profile is TM-dominated (large values, wide batches)
		// so that the backing system — not per-request socket overhead —
		// sets the throughput.
		keys      = flag.Int("keys", 256, "contended keyset size")
		valSize   = flag.Int("value", 512, "value size in bytes")
		readFrac  = flag.Float64("reads", 0.5, "fraction of single-key requests that are GETs")
		batch     = flag.Float64("batch", 0.5, "fraction of requests that are multi-key atomic batches")
		batchSz   = flag.Int("batchsize", 16, "keys per batch request")
		shards    = flag.Int("shards", 16, "self-hosted server shard count")
		buckets   = flag.Int("buckets", 64, "self-hosted server buckets per shard")
		threads   = flag.Int("threads", defaultThreads(), "self-hosted server TM thread pool size")
		out       = flag.String("out", "BENCH_kv.json", "machine-readable output file (empty disables)")
		mOut      = flag.String("metrics-out", "BENCH_kv.json", "bench file that also receives server-side commit-latency histogram percentiles; usually the same file as -out (empty disables)")
		fsyncs    = flag.String("fsync", "", "also measure a crash-durable NZSTM server per listed WAL fsync policy (comma-separated: always,interval,never); the memory-only baselines above are unchanged")
		repl      = flag.Bool("replicated", false, "also measure a 3-node replication cluster (1 primary + 2 read replicas, reads routed to replicas) against a single-node control on the same read-heavy profile")
		connsSw   = flag.String("connections", "", "comma-separated connection counts (e.g. 8,64,512) to sweep against one fixed NZSTM executor pool — the M:N scheduler scaling curve; each count lands as its own labeled result")
		execsN    = flag.Int("executors", 0, "pin the self-hosted servers' executor-pool size (0 = server default: 2×GOMAXPROCS); the -connections sweep uses this fixed pool")
		zipf      = flag.Float64("zipf", 0, "zipfian key-skew theta in (0,1) for single-key and RMW picks (0 = uniform; YCSB-style, 0.99 = heavy skew)")
		rmw       = flag.Float64("rmw", 0, "fraction of requests that are atomic read-modify-writes on one key")
		crossover = flag.Bool("crossover", false, "run the adaptive crossover matrix: {nzstm, glock, adaptive} × {uniform, zipf-skewed} with the same op mix, labeled per regime (defaults -zipf to 0.99 and -rmw to 0.8 when unset)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile covering the whole run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (after a final GC) to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := config{
		clients: *clients, duration: *duration, warmup: *warmup,
		keys: *keys, valueSize: *valSize, readFrac: *readFrac,
		batchFrac: *batch, batchSize: *batchSz,
		shards: *shards, buckets: *buckets, threads: *threads,
		executors: *execsN,
		zipfTheta: *zipf, rmwFrac: *rmw,
	}

	var results []result
	if *addr != "" {
		r, err := measure("remote", *addr, nil, cfg)
		if err != nil {
			fatal(err)
		}
		results = append(results, r)
	} else {
		for _, name := range strings.Split(*systems, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			r, err := selfHost(name, "", cfg)
			if err != nil {
				fatal(err)
			}
			results = append(results, r)
		}
		for _, policy := range strings.Split(*fsyncs, ",") {
			policy = strings.TrimSpace(policy)
			if policy == "" {
				continue
			}
			r, err := selfHost("nzstm", policy, cfg)
			if err != nil {
				fatal(err)
			}
			results = append(results, r)
		}
		if *repl {
			rs, err := measureReplicated(cfg)
			if err != nil {
				fatal(err)
			}
			results = append(results, rs...)
		}
		// Connection sweep: the same NZSTM server profile at each listed
		// connection count over one fixed executor pool, so the results
		// plot throughput/latency as N grows past M.
		for _, c := range strings.Split(*connsSw, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			n, err := strconv.Atoi(c)
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad -connections entry %q", c))
			}
			swCfg := cfg
			swCfg.clients = n
			r, err := selfHost("nzstm", "", swCfg)
			if err != nil {
				fatal(err)
			}
			r.System = fmt.Sprintf("%s@c%d", r.System, n)
			results = append(results, r)
		}
		if *crossover {
			rs, err := measureCrossover(cfg)
			if err != nil {
				fatal(err)
			}
			results = append(results, rs...)
		}
	}

	fmt.Printf("\n%-20s %8s %12s %10s %10s %10s %10s %10s\n",
		"system", "clients", "req/s", "p50", "p95", "p99", "max", "abort%")
	for _, r := range results {
		fmt.Printf("%-20s %8d %12.0f %9.0fµs %9.0fµs %9.0fµs %9.0fµs %9.2f%%\n",
			r.System, r.Clients, r.Throughput, r.P50Us, r.P95Us, r.P99Us, r.MaxUs, 100*r.AbortRate)
	}
	compare(results)
	printStageBreakdowns(results)

	f := benchFile{
		Benchmark: "kv-serving", When: time.Now().UTC().Format(time.RFC3339),
		Clients: cfg.clients, Keys: cfg.keys, ValueSize: cfg.valueSize,
		ReadFrac: cfg.readFrac, BatchFrac: cfg.batchFrac, BatchSize: cfg.batchSize,
		Shards: cfg.shards, Buckets: cfg.buckets, Threads: cfg.threads,
		Results: results,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	// Results carry both client-side and server-side (commit-latency)
	// percentiles, so -out and -metrics-out usually name the same file and
	// cost one write; distinct paths get distinct copies.
	paths := []string{*out}
	if *mOut != "" && *mOut != *out {
		paths = append(paths, *mOut)
	}
	for _, path := range paths {
		if path == "" {
			continue
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", path)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *memProf)
	}
}

// printStageBreakdowns prints the per-stage latency attribution for
// every durable run — the decomposition of what each fsync policy costs
// (where the fsync=always cliff actually goes: fsync_wait, not TM).
func printStageBreakdowns(results []result) {
	for _, r := range results {
		if len(r.Stages) == 0 || r.Fsync == "" {
			continue
		}
		fmt.Printf("\nstage breakdown %s (fsync=%s, coverage %.1f%% of request time):\n",
			r.System, r.Fsync, 100*r.StageCoverage)
		for _, s := range r.Stages {
			fmt.Printf("  %-11s mean %8.1fµs  p99 %8.1fµs  (%d samples, %.0fms total)\n",
				s.Stage, s.MeanUs, s.P99Us, s.Count, s.TotalMs)
		}
	}
}

// stageBreakdown folds the server's span-stage histograms into JSON rows
// plus the attribution-coverage ratio: summed stage time over summed
// end-to-end span time.
func stageBreakdown(sm *server.SpanMetrics) ([]stageStat, float64) {
	var rows []stageStat
	var stageNs uint64
	for i := 0; i < trace.SpanStages; i++ {
		h := sm.Stage(i)
		if h.Count() == 0 {
			continue
		}
		stageNs += h.Sum()
		rows = append(rows, stageStat{
			Stage:   trace.StageName(i),
			Count:   h.Count(),
			MeanUs:  float64(h.MeanValue()) / 1e3,
			P99Us:   float64(h.QuantileValue(0.99)) / 1e3,
			TotalMs: float64(h.Sum()) / 1e6,
		})
	}
	total := sm.Total()
	if total.Sum() == 0 {
		return rows, 0
	}
	return rows, float64(stageNs) / float64(total.Sum())
}

// defaultThreads sizes the server's TM thread pool: all cores, but at
// least 8 so request concurrency (and the lock-vs-NZSTM contention the
// benchmark exists to show) survives small containers.
func defaultThreads() int {
	if n := runtime.GOMAXPROCS(0); n > 8 {
		return n
	}
	return 8
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nztm-load:", err)
	os.Exit(1)
}

// compare prints the paper's qualitative claim in serving form when both
// NZSTM and the global-lock baseline were measured.
func compare(results []result) {
	var nz, gl *result
	for i := range results {
		switch results[i].System {
		case "NZSTM":
			nz = &results[i]
		case "GlobalLock":
			gl = &results[i]
		}
	}
	if nz == nil || gl == nil || gl.Throughput == 0 {
		return
	}
	fmt.Printf("\nNZSTM/GlobalLock throughput: %.2fx at %d clients (paper §4.4: NZSTM scales past the lock)\n",
		nz.Throughput/gl.Throughput, nz.Clients)
}

// selfHost starts a server for the named backend on a loopback listener,
// measures it, and shuts it down. A non-empty fsync policy makes the
// store crash-durable (WAL in a temp directory, snapshots every 500ms),
// so the run prices exactly what durability costs over the same stack.
func selfHost(name, fsync string, cfg config) (result, error) {
	backend, err := kv.OpenBackend(name, cfg.threads)
	if err != nil {
		return result{}, err
	}
	var store *kv.Store
	if fsync != "" {
		policy, err := wal.ParseFsyncPolicy(fsync)
		if err != nil {
			return result{}, err
		}
		dir, err := os.MkdirTemp("", "nztm-load-wal-")
		if err != nil {
			return result{}, err
		}
		defer os.RemoveAll(dir)
		store, _, err = kv.NewDurable(backend.Sys, cfg.shards, cfg.buckets, kv.Durability{
			Dir:           dir,
			Fsync:         policy,
			SnapshotEvery: 500 * time.Millisecond,
			NewThread:     backend.NewThread,
		})
		if err != nil {
			return result{}, err
		}
	} else {
		store = kv.New(backend.Sys, cfg.shards, cfg.buckets)
	}
	m := store.EnableMetrics()
	// Adaptive backend: the facade needs its controller running or it is
	// just NZSTM with one extra CAS. Aggressive-but-sane settings sized to
	// the short measured window (the server binary defaults are tuned for
	// long-lived serving).
	var adSys *adaptive.System
	if as, ok := backend.Sys.(*adaptive.System); ok {
		adSys = as
		err := as.StartController(store, adaptive.ControllerConfig{
			Interval:       50 * time.Millisecond,
			EnterAbortRate: 0.35,
			ExitAbortRate:  0.10,
			MinOps:         16,
			MinProbes:      4,
			MinDwell:       250 * time.Millisecond,
		})
		if err != nil {
			return result{}, err
		}
	}
	scfg := server.Config{
		MaxAttempts:    100_000,
		RequestTimeout: 5 * time.Second,
	}
	if cfg.executors > 0 {
		scfg.Executors = backend.Executors(cfg.executors)
	}
	srv := server.New(store, backend.Reg, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return result{}, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	label := backend.Sys.Name()
	if fsync != "" {
		label += "+wal(" + fsync + ")"
	}
	fmt.Printf("nztm-load: measuring %s on %s...\n", label, ln.Addr())

	r, err := measure(label, ln.Addr().String(), backend.Sys.Stats(), cfg)
	r.Stages, r.StageCoverage = stageBreakdown(srv.Spans())
	if adSys != nil {
		adSys.StopController()
		st := adSys.ModeStats()
		r.SwitchesToPes = st.SwitchesToPessimistic.Load()
		r.SwitchesToOpt = st.SwitchesToOptimistic.Load()
		mask := adSys.PessimisticMask()
		for mask != 0 {
			r.FinalPesGroups++
			mask &= mask - 1
		}
	}
	srv.Shutdown(5 * time.Second)
	<-done
	if cerr := store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	r.Fsync = fsync
	r.Executors = scfg.Executors
	r.ZipfTheta = cfg.zipfTheta
	r.RMWFrac = cfg.rmwFrac
	if err == nil {
		// Server-side commit-latency percentiles: the distribution covers
		// the whole run (warmup included) — the per-interval client
		// histogram above stays the headline number.
		us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
		p50, p95, p99 := m.CommitLatency.Percentiles()
		r.CommitP50Us, r.CommitP95Us, r.CommitP99Us = us(p50), us(p95), us(p99)
	}
	return r, err
}

// measure preloads the keyset and runs the closed loop: cfg.clients
// goroutines, each with its own connection, issuing mixed single-key ops
// and multi-key atomic batches as fast as responses come back.
func measure(sysName, addr string, stats *tm.Stats, cfg config) (result, error) {
	keys := make([]string, cfg.keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k:%06d", i)
	}
	value := make([]byte, cfg.valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	setup, err := server.Dial(addr)
	if err != nil {
		return result{}, err
	}
	for _, k := range keys {
		if _, err := setup.Put(k, value); err != nil {
			setup.Close()
			return result{}, fmt.Errorf("preload: %w", err)
		}
	}
	setup.Close()

	var (
		recording atomic.Bool
		stop      atomic.Bool
		requests  atomic.Uint64
		failures  atomic.Uint64
		lat       server.Histogram
		wg        sync.WaitGroup
		errs      = make(chan error, cfg.clients)
	)
	var zg *zipfGen
	if cfg.zipfTheta > 0 {
		zg = newZipfGen(len(keys), cfg.zipfTheta)
	}
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := uint64(id+1)*0x9e3779b97f4a7c15 + 11
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			// pick draws a key: zipfian(theta) over the keyset when skew
			// is on (rank 0 = hottest key), uniform otherwise.
			pick := func() string {
				if zg != nil {
					u := float64(next()%1_000_003) / 1_000_003
					return keys[zg.rank(u)]
				}
				return keys[next()%uint64(len(keys))]
			}
			for !stop.Load() {
				r := next()
				var ops []kv.Op
				switch {
				case float64(r%1000)/1000 < cfg.batchFrac:
					// Multi-key atomic batch: half reads, half writes.
					ops = make([]kv.Op, cfg.batchSize)
					write := next()%2 == 0
					for i := range ops {
						k := pick()
						if write {
							ops[i] = kv.Op{Kind: kv.OpPut, Key: k, Value: value}
						} else {
							ops[i] = kv.Op{Kind: kv.OpGet, Key: k}
						}
					}
				case float64(r>>20%1000)/1000 < cfg.rmwFrac:
					// Atomic read-modify-write of one key: the shape whose
					// optimistic abort rate explodes under skew.
					k := pick()
					ops = []kv.Op{{Kind: kv.OpGet, Key: k}, {Kind: kv.OpPut, Key: k, Value: value}}
				case float64(r>>10%1000)/1000 < cfg.readFrac:
					ops = []kv.Op{{Kind: kv.OpGet, Key: pick()}}
				default:
					ops = []kv.Op{{Kind: kv.OpPut, Key: pick(), Value: value}}
				}
				start := time.Now()
				_, err := c.Do(ops)
				if stop.Load() {
					return
				}
				if err != nil {
					if recording.Load() {
						failures.Add(1)
					}
					continue
				}
				if recording.Load() {
					requests.Add(1)
					lat.Observe(time.Since(start))
				}
			}
		}(w)
	}

	time.Sleep(cfg.warmup)
	var before tm.StatsView
	if stats != nil {
		before = stats.View()
	}
	recording.Store(true)
	measureStart := time.Now()
	time.Sleep(cfg.duration)
	recording.Store(false)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return result{}, err
	default:
	}

	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	res := result{
		System:     sysName,
		Clients:    cfg.clients,
		DurationS:  elapsed.Seconds(),
		Requests:   requests.Load(),
		Failures:   failures.Load(),
		Throughput: float64(requests.Load()) / elapsed.Seconds(),
		P50Us:      us(lat.Quantile(0.50)),
		P95Us:      us(lat.Quantile(0.95)),
		P99Us:      us(lat.Quantile(0.99)),
		MaxUs:      us(lat.Max()),
		MeanUs:     us(lat.Mean()),
	}
	if stats != nil {
		d := stats.View().Delta(before)
		res.Commits, res.Aborts, res.Inflations = d.Commits, d.Aborts, d.Inflations
		res.AbortRate = d.AbortRate()
	}
	return res, nil
}

// zipfGen is the YCSB-style bounded zipfian sampler (Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases"): closed-form
// inverse-CDF approximation, valid for theta in (0, 1). rank(u) maps a
// uniform u in [0,1) to a key rank with rank 0 the hottest.
type zipfGen struct {
	n                 int
	theta             float64
	alpha, zetan, eta float64
	halfPowTheta      float64
}

func newZipfGen(n int, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	z.alpha = 1 / (1 - theta)
	z.halfPowTheta = math.Pow(0.5, theta)
	zeta2 := 1 + z.halfPowTheta
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

func (z *zipfGen) rank(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.halfPowTheta {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// measureCrossover runs the adaptive acceptance matrix: the three backends
// {nzstm, glock, adaptive} under the same op mix at two key distributions
// (uniform and zipf-skewed). The claim under test: each fixed backend loses
// one regime — NZSTM the skewed one (abort storms), GlobalLock the uniform
// one (needless serialization) — while adaptive tracks the winner of both
// by switching modes per shard group.
func measureCrossover(cfg config) ([]result, error) {
	// The crossover needs transactions long enough to overlap and a mix
	// whose conflict rate is set by key skew, not by batch birthday
	// collisions — so it pins its own profile instead of inheriting the
	// general-purpose serving defaults: a large keyset (uniform traffic
	// conflicts rarely), fat values and wide batches (real work per
	// transaction), and an RMW leg (the shape whose optimistic abort rate
	// explodes when picks concentrate).
	cfg.clients = 16
	cfg.keys = 8192
	cfg.valueSize = 4096
	cfg.batchFrac = 0.6
	cfg.batchSize = 16
	if cfg.zipfTheta <= 0 {
		cfg.zipfTheta = 0.99
	}
	if cfg.rmwFrac <= 0 {
		cfg.rmwFrac = 0.7
	}
	// Transactions can only overlap (and therefore conflict) if the Go
	// scheduler runs more than one executor thread; single-core containers
	// default to GOMAXPROCS=1, which serializes everything and hides the
	// regimes this matrix exists to show.
	if prev := runtime.GOMAXPROCS(0); prev < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
	}
	uniform := cfg
	uniform.zipfTheta = 0
	regimes := []struct {
		name string
		cfg  config
	}{
		{"uniform", uniform},
		{fmt.Sprintf("zipf%.2f", cfg.zipfTheta), cfg},
	}
	var results []result
	for _, reg := range regimes {
		for _, sys := range []string{"nzstm", "glock", "adaptive"} {
			r, err := selfHost(sys, "", reg.cfg)
			if err != nil {
				return nil, err
			}
			r.System += "@" + reg.name
			results = append(results, r)
		}
	}
	compareCrossover(results)
	return results, nil
}

// compareCrossover prints the per-regime ranking and whether adaptive held
// within 10% of the best fixed backend in each.
func compareCrossover(results []result) {
	byPrefix := func(regime, prefix string) *result {
		for i := range results {
			if strings.HasSuffix(results[i].System, "@"+regime) && strings.HasPrefix(results[i].System, prefix) {
				return &results[i]
			}
		}
		return nil
	}
	regimes := map[string]bool{}
	for _, r := range results {
		if i := strings.LastIndex(r.System, "@"); i >= 0 {
			regimes[r.System[i+1:]] = true
		}
	}
	for regime := range regimes {
		nz, gl, ad := byPrefix(regime, "NZSTM"), byPrefix(regime, "GlobalLock"), byPrefix(regime, "Adaptive")
		if nz == nil || gl == nil || ad == nil {
			continue
		}
		bestFixed := nz.Throughput
		if gl.Throughput > bestFixed {
			bestFixed = gl.Throughput
		}
		best := bestFixed
		if ad.Throughput > best {
			best = ad.Throughput
		}
		frac := ad.Throughput / bestFixed
		verdict := "OK (within 10% of best fixed)"
		if frac < 0.9 {
			verdict = fmt.Sprintf("BELOW target (%.0f%% of best fixed)", 100*frac)
		}
		fmt.Printf("crossover %-10s NZSTM=%.0f GlobalLock=%.0f Adaptive=%.0f req/s — adaptive %.2fx best fixed, %s; switches pes=%d opt=%d final-pes-groups=%d\n",
			regime, nz.Throughput, gl.Throughput, ad.Throughput, frac, verdict,
			ad.SwitchesToPes, ad.SwitchesToOpt, ad.FinalPesGroups)
		// A fixed backend "loses" a regime when it falls more than 10%
		// short of the regime's best backend — the evidence that neither
		// store-lifetime choice is safe across workloads.
		for _, fixed := range []*result{nz, gl} {
			if f := fixed.Throughput / best; f < 0.9 {
				fmt.Printf("crossover %-10s   %s loses this regime: %.0f%% of best\n",
					regime, fixed.System, 100*f)
			}
		}
	}
}
