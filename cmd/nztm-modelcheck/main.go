// nztm-modelcheck reproduces the paper's §3: exhaustive state-space
// exploration of the NZSTM protocol model — the Spin/Promela analysis,
// mechanised in Go. It checks safety (no lost or phantom updates, no commit
// with a pending abort request), deadlock freedom, and action coverage
// ("all code paths are taken at least once"), and can demonstrate the
// counterexample the checker finds for a naive force-abort design.
//
// Usage:
//
//	nztm-modelcheck -threads 3 -retries 1
//	nztm-modelcheck -variant buggy          (shows the late-write corruption)
//	nztm-modelcheck -crossed                (opposite-order acquisition)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nztm/internal/mc"
)

func main() {
	var (
		threads   = flag.Int("threads", 2, "number of model threads (2–3 are exhaustive in seconds)")
		retries   = flag.Int("retries", 1, "retries per transaction")
		variant   = flag.String("variant", "nz", "nz, bz, scss, or buggy")
		crossed   = flag.Bool("crossed", false, "two threads acquire two objects in opposite orders")
		rw        = flag.Bool("rw", false, "read-sharing model: reader/reader/writer on one object")
		maxStates = flag.Int("maxstates", 1<<24, "state budget")
	)
	flag.Parse()

	var v mc.Variant
	switch *variant {
	case "nz":
		v = mc.VariantNZ
	case "bz":
		v = mc.VariantBZ
	case "scss":
		v = mc.VariantSCSS
	case "buggy":
		v = mc.VariantBuggy
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	var model mc.Model
	if *rw {
		rcfg := mc.RWConfig{Variant: v, Objects: 1, Retries: *retries}
		for i := 0; i < *threads; i++ {
			if i == *threads-1 {
				rcfg.Scripts = append(rcfg.Scripts, []mc.Op{mc.W(0)})
			} else {
				rcfg.Scripts = append(rcfg.Scripts, []mc.Op{mc.R(0)})
			}
		}
		fmt.Printf("checking read-sharing %s: %d threads (%d readers + 1 writer), %d retries\n",
			*variant, *threads, *threads-1, *retries)
		model = mc.RWModel(rcfg)
	} else {
		cfg := mc.NZConfig{Variant: v, Retries: *retries}
		if *crossed {
			cfg.Scripts = [][]int{{0, 1}, {1, 0}}
			cfg.Objects = 2
		} else {
			for i := 0; i < *threads; i++ {
				cfg.Scripts = append(cfg.Scripts, []int{0})
			}
			cfg.Objects = 1
		}
		fmt.Printf("checking %s: %d threads, %d objects, %d retries\n",
			*variant, len(cfg.Scripts), cfg.Objects, cfg.Retries)
		model = mc.NZModel(cfg)
	}
	start := time.Now()
	res := mc.Check(model, mc.Options{MaxStates: *maxStates})
	elapsed := time.Since(start)

	fmt.Printf("states: %d   transitions: %d   time: %v\n",
		res.States, res.Transitions, elapsed.Round(time.Millisecond))
	fmt.Printf("actions covered: %v\n", res.Covered)
	if res.Err != nil {
		fmt.Printf("VIOLATION: %v\n", res.Err)
		fmt.Println("counterexample:")
		for i, step := range res.Trace {
			fmt.Printf("  %3d. %s\n", i+1, step)
		}
		os.Exit(1)
	}
	fmt.Println("no violations: invariant holds in every reachable state, no deadlock")
}
