package main

// Child-process tests for the binary's observability surface: the HTTP
// mux (/metricsz conformance, /tracez filters, /slowz), and SIGQUIT
// dumping diagnostics to stderr without killing the server.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"nztm/internal/kv"
	"nztm/internal/metrics"
	"nztm/internal/server"
)

// lineBuffer accumulates a stream and signals watchers on every line.
type lineBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (b *lineBuffer) consume(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		b.mu.Lock()
		b.lines = append(b.lines, sc.Text())
		b.mu.Unlock()
	}
}

func (b *lineBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Join(b.lines, "\n")
}

// waitContains polls until the buffer contains want.
func (b *lineBuffer) waitContains(t *testing.T, d time.Duration, want string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !strings.Contains(b.String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %q in:\n%s", want, b.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// pickAddr reserves a loopback address (small reuse race, fine in tests).
func pickAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestServerObservabilityEndToEnd builds the real binary, drives traffic
// through it, lints the composed /metricsz document, exercises the
// /tracez filters and /slowz, then proves SIGQUIT dumps the trace rings
// and slow ring to stderr while the server keeps serving.
func TestServerObservabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process test")
	}
	bin := filepath.Join(t.TempDir(), "nztm-server")
	if out, err := exec.Command("go", "build", "-o", bin, "nztm/cmd/nztm-server").CombinedOutput(); err != nil {
		t.Fatalf("building nztm-server: %v\n%s", err, out)
	}

	statszAddr := pickAddr(t)
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-statsz", statszAddr,
		"-trace", "64",
		"-executors", "2",
		"-data-dir", t.TempDir(),
		"-fsync", "never",
	)
	stdout := &lineBuffer{}
	stderr := &lineBuffer{}
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go stdout.consume(outPipe)
	go stderr.consume(errPipe)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	stdout.waitContains(t, 10*time.Second, "nztm-server: ready addr=")
	var kvAddr string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if _, err := fmt.Sscanf(line, "nztm-server: ready addr=%s", &kvAddr); err == nil {
			break
		}
	}
	if kvAddr == "" {
		t.Fatalf("no ready line in:\n%s", stdout.String())
	}

	c, err := server.Dial(kvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 32; i++ {
		if _, err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Do([]kv.Op{
		{Kind: kv.OpPut, Key: "a", Value: []byte("1")},
		{Kind: kv.OpPut, Key: "b", Value: []byte("2")},
	}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + statszAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// The composed document — server + scheduler + spans + TM + KV +
	// durability — must lint clean end to end.
	code, metricsBody := get("/metricsz")
	if code != 200 {
		t.Fatalf("/metricsz code=%d", code)
	}
	if problems := metrics.LintProm(strings.NewReader(metricsBody)); len(problems) != 0 {
		t.Errorf("live /metricsz exposition violations:\n  %s", strings.Join(problems, "\n  "))
	}
	for _, want := range []string{
		`nztm_stage_us_count{stage="decode"}`,
		`nztm_stage_us_count{stage="wal_append"}`,
		"nztm_request_total_us_count",
		"nztm_wal_fsync_cohort_frames_count",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("live /metricsz missing %q", want)
		}
	}

	if code, body := get("/slowz"); code != 200 || !strings.Contains(body, `"entries"`) {
		t.Errorf("/slowz: code=%d body=%.200s", code, body)
	}
	if code, body := get("/tracez?limit=1"); code != 200 || !strings.Contains(body, `"sources"`) {
		t.Errorf("/tracez?limit=1: code=%d body=%.200s", code, body)
	}
	if code, _ := get("/tracez?source=abc"); code != 400 {
		t.Errorf("/tracez?source=abc: code=%d, want 400", code)
	}

	// SIGQUIT: diagnostics on stderr, process stays up.
	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	stderr.waitContains(t, 10*time.Second, "nztm-server: diagnostics done")
	dump := stderr.String()
	if !strings.Contains(dump, "flight recorder") {
		t.Errorf("SIGQUIT dump missing flight recorder:\n%.500s", dump)
	}
	if !strings.Contains(dump, "slow requests") {
		t.Errorf("SIGQUIT dump missing slow-request ring:\n%.500s", dump)
	}
	if _, err := c.Put("after-sigquit", []byte("alive")); err != nil {
		t.Fatalf("server died after SIGQUIT: %v", err)
	}

	// Clean shutdown still works after diagnostics.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("child ignored SIGTERM:\nstdout:\n%s", stdout.String())
	}
	_ = os.Remove(bin)
}
