// nztm-server serves a sharded transactional key-value store over TCP,
// backed by any of the repository's TM systems running in real-concurrency
// mode — the serving-path deployment of NZSTM.
//
// Usage:
//
//	nztm-server -addr :7420 -statsz :7421 -system nzstm -shards 16 -buckets 64 -threads 8
//
// The binary speaks the length-prefixed binary protocol of internal/server
// (use internal/server.Client or cmd/nztm-load to talk to it) and exposes an
// HTTP observability mux beside it: plain-text /statsz (counters, interval
// rates, latency histograms, contention hotspots), Prometheus /metricsz,
// JSON /tracez (per-thread flight-recorder event logs, -trace to enable),
// and net/http/pprof under /debug/pprof/ behind -pprof. SIGINT/SIGTERM
// trigger a graceful drain: stop accepting, finish in-flight requests
// within -drain, flush + sync the write-ahead log, exit 0.
//
// Requests are served by an M:N scheduler (DESIGN.md §14): connections
// never bind registry slots; their requests flow through a bounded
// admission queue (-queue-depth, -admission reject|block) into a pool of
// -executors slot-bound workers, so N connections share M TM threads and
// overload is shed as StatusOverloaded instead of accepted and queued
// without bound.
//
// With -data-dir the store is crash-durable: committed transactions are
// appended to a per-shard checksummed write-ahead log (group commit,
// -fsync always|interval|never), -snapshot-every seals periodic
// per-shard snapshots that truncate the covered log, and boot recovers
// the directory's provable state before the listener opens. See
// DESIGN.md §12.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"nztm/internal/adaptive"
	"nztm/internal/fault"
	"nztm/internal/kv"
	"nztm/internal/repl"
	"nztm/internal/server"
	"nztm/internal/trace"
	"nztm/internal/wal"
)

func main() {
	var (
		addr    = flag.String("addr", ":7420", "TCP listen address for the KV protocol")
		statsz  = flag.String("statsz", ":7421", "HTTP listen address for /statsz, /metricsz, /tracez (empty disables)")
		system  = flag.String("system", "nzstm", "backing TM system: "+strings.Join(kv.BackendNames(), ", "))
		shards  = flag.Int("shards", 16, "shard count")
		buckets = flag.Int("buckets", 64, "transactional buckets per shard")
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "expected concurrency hint (soft max: sizes initial TM tables; serving concurrency is set by -executors)")
		execs   = flag.Int("executors", 0, "slot-bound executor workers draining the admission queue (0 = 2×GOMAXPROCS, clamped to registry capacity); connections share this pool M:N")
		queueD  = flag.Int("queue-depth", 0, "admission queue capacity (0 = default 1024)")
		admit   = flag.String("admission", server.AdmitReject, "queue-full policy: reject (shed with StatusOverloaded) or block (park the connection reader)")
		maxAtt  = flag.Int("max-attempts", 512, "per-request transaction attempt budget (0 = unlimited)")
		timeout = flag.Duration("timeout", 2*time.Second, "per-request retry deadline (0 = none)")
		infl    = flag.Int("max-inflight", 64, "max concurrently executing requests per connection")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
		faultSd = flag.Uint64("fault-seed", 0, "arm the fault-injection plane with this seed (0 = off)")
		backoff = flag.Duration("retry-backoff", 0, "base backoff between transaction retries (0 = immediate retry)")
		traceN  = flag.Int("trace", 0, "per-thread flight-recorder capacity in events (0 = tracing off; keeps the hot path allocation-free)")
		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the statsz mux")

		dataDir   = flag.String("data-dir", "", "write-ahead-log data directory (empty = memory-only, no durability)")
		fsyncMode = flag.String("fsync", "always", "WAL sync policy: always (fsync before every ack), interval (background fsync every -fsync-interval), never (OS decides)")
		fsyncIntv = flag.Duration("fsync-interval", 50*time.Millisecond, "background fsync period under -fsync interval")
		snapEvery = flag.Duration("snapshot-every", 0, "per-shard snapshot + log-truncation period (0 = never snapshot; the log grows unbounded)")

		adInterval = flag.Duration("adaptive-interval", 100*time.Millisecond, "adaptive controller sampling period (-system adaptive)")
		adEnter    = flag.Float64("adaptive-enter", 0.5, "windowed abort fraction at which a shard group goes pessimistic")
		adExit     = flag.Float64("adaptive-exit", 0.1, "probe abort fraction at which a pessimistic group returns optimistic (must be < -adaptive-enter)")
		adMinOps   = flag.Uint64("adaptive-min-ops", 32, "minimum windowed attempts before the enter rule may fire")
		adMinProbe = flag.Uint64("adaptive-min-probes", 4, "minimum windowed probe transactions before the exit rule may fire")
		adDwell    = flag.Duration("adaptive-dwell", time.Second, "minimum time between mode switches of one group (hysteresis dwell)")
		adProbeN   = flag.Uint64("adaptive-probe-every", 16, "admit every Nth arrival to a pessimistic group optimistically as a probe (0 disables probes)")

		crashSeed  = flag.Uint64("crash-seed", 0, "arm deterministic kill-self crash-point injection with this seed (0 = off; testing only)")
		crashSites = flag.String("crash-sites", "all", "comma-separated WAL crash sites to arm (pre-append, mid-append, post-append, mid-snapshot, mid-truncate, or all)")
		crashProb  = flag.Float64("crash-prob", 0.01, "per-visit firing probability at each armed crash site")

		diskSeed  = flag.Uint64("disk-fault-seed", 0, "arm deterministic disk I/O error injection with this seed (0 = off; testing only; passthrough until recovery completes)")
		diskSites = flag.String("disk-fault-sites", "all", "comma-separated disk fault sites to arm (write-eio, write-short, write-enospc, sync, open, read, rename, or all)")
		diskProb  = flag.Float64("disk-fault-prob", 0.01, "per-visit firing probability at each armed disk fault site")

		replAddr  = flag.String("repl-addr", "", "replication listen address (empty disables the replication plane; requires -data-dir)")
		replFrom  = flag.String("replicate-from", "", "start as a follower of the primary at this replication address (empty with -repl-addr = start as primary)")
		advertise = flag.String("advertise", "", "replication address to advertise to peers (default: the bound -repl-addr)")
		peers     = flag.String("peers", "", "comma-separated replication addresses of every OTHER node (election quorum + discovery)")
		nodeID    = flag.Int("node-id", 0, "this node's unique id in the cluster (election tie-break: lower wins)")
		replAck   = flag.String("repl-ack", "one", "write acknowledgement policy: none, one, majority")
		hbEvery   = flag.Duration("heartbeat-every", 50*time.Millisecond, "primary lease-renewal period")
		leaseTo   = flag.Duration("lease-timeout", 0, "follower election trigger after this silence (default 5 × -heartbeat-every)")
		readWait  = flag.Duration("max-read-wait", time.Second, "bounded-staleness read wait budget before StatusLagging")
	)
	flag.Parse()

	if *admit != server.AdmitReject && *admit != server.AdmitBlock {
		fmt.Fprintf(os.Stderr, "nztm-server: -admission must be %q or %q, got %q\n",
			server.AdmitReject, server.AdmitBlock, *admit)
		os.Exit(2)
	}
	backend, err := kv.OpenBackend(*system, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nztm-server:", err)
		os.Exit(2)
	}
	sys := backend.Sys
	cfg := server.Config{
		MaxAttempts:    *maxAtt,
		RequestTimeout: *timeout,
		MaxInflight:    *infl,
		RetryBackoff:   *backoff,
		QueueDepth:     *queueD,
		Admission:      *admit,
	}
	// -executors 0 keeps the server's own default (2×GOMAXPROCS, clamped);
	// an explicit count is clamped to what the registry can bind with a
	// slot spared for system actors (WAL, snapshots, replication apply).
	if *execs > 0 {
		cfg.Executors = backend.Executors(*execs)
	}
	var fr *trace.FlightRecorder
	if *traceN > 0 {
		fr = trace.New(*traceN)
		backend.Reg.BindRecorder(fr)
	}
	var statszHooks, metricszHooks []func(io.Writer)
	var plane *fault.Plane
	if *faultSd != 0 {
		fcfg := fault.DefaultConfig(*faultSd)
		if strings.EqualFold(*system, "glock") {
			// The global-lock baseline cannot retry (tm.Retry panics over
			// it); every other fault class stays on.
			fcfg.AbortProb = 0
		}
		plane = fault.New(fcfg)
		cfg.WrapThread = plane.WrapThread
		sys = plane.WrapSystem(sys)
		statszHooks = append(statszHooks, plane.WriteStats)
		if fr != nil {
			plane.BindRecorder(fr)
		}
	}

	var store *kv.Store
	var disk *fault.Disk
	if *dataDir != "" {
		policy, err := wal.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nztm-server:", err)
			os.Exit(2)
		}
		dur := kv.Durability{
			Dir:           *dataDir,
			Fsync:         policy,
			FsyncInterval: *fsyncIntv,
			SnapshotEvery: *snapEvery,
			NewThread:     backend.NewThread,
		}
		if fr != nil {
			dur.Recorder = fr.ForSource(trace.WALSource)
		}
		if *crashSeed != 0 {
			probs, err := fault.ParseCrashSites(*crashSites, *crashProb)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nztm-server:", err)
				os.Exit(2)
			}
			cp := fault.NewCrashPoints(fault.CrashConfig{Seed: *crashSeed, Probs: probs})
			dur.CrashHook = cp.Hook
			fmt.Printf("nztm-server: crash points armed: sites=%s prob=%g seed=%d\n",
				*crashSites, *crashProb, *crashSeed)
		}
		if *diskSeed != 0 {
			probs, err := fault.ParseDiskSites(*diskSites, *diskProb)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nztm-server:", err)
				os.Exit(2)
			}
			// The disk stays passthrough until Arm() fires right before the
			// ready line: recovery and the boot MANIFEST always see clean
			// I/O, faults only hit the serving path.
			disk = fault.NewDisk(fault.DiskConfig{Seed: *diskSeed, Probs: probs, Output: os.Stderr})
			dur.FS = disk
			statszHooks = append(statszHooks, disk.WriteStats)
			metricszHooks = append(metricszHooks, disk.WriteProm)
			fmt.Printf("nztm-server: disk faults loaded: sites=%s prob=%g seed=%d (armed after recovery)\n",
				*diskSites, *diskProb, *diskSeed)
		}
		// Recovery runs here, before the listener opens: the store never
		// serves a byte it cannot prove.
		s, st, err := kv.NewDurable(sys, *shards, *buckets, dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nztm-server:", err)
			os.Exit(1)
		}
		store = s
		fmt.Printf("nztm-server: recovered %s: replayed=%d dropped=%d truncated_bytes=%d in %v (fsync=%s snapshot-every=%v)\n",
			*dataDir, st.ReplayedFrames, st.DroppedFrames, st.TruncatedBytes,
			st.Duration.Round(time.Microsecond), policy, *snapEvery)
		statszHooks = append(statszHooks, store.WriteDurabilityStats)
		metricszHooks = append(metricszHooks, store.WriteDurabilityProm)
	} else {
		store = kv.New(sys, *shards, *buckets)
	}
	store.EnableMetrics()

	// Adaptive backend: the facade is the pre-fault-wrap system reference,
	// so the type assertion sees through any fault decoration. The store's
	// per-shard commit/abort counters (grouped by mask bit) are the
	// controller's contention signal.
	var adaptiveSys *adaptive.System
	if as, ok := backend.Sys.(*adaptive.System); ok {
		adaptiveSys = as
		as.SetProbeEvery(*adProbeN)
		if fr != nil {
			as.BindRecorder(fr.ForSource(trace.AdaptiveSource))
		}
		acfg := adaptive.ControllerConfig{
			Interval:       *adInterval,
			EnterAbortRate: *adEnter,
			ExitAbortRate:  *adExit,
			MinOps:         *adMinOps,
			MinProbes:      *adMinProbe,
			MinDwell:       *adDwell,
		}
		if err := as.StartController(store, acfg); err != nil {
			fmt.Fprintln(os.Stderr, "nztm-server:", err)
			os.Exit(2)
		}
		statszHooks = append(statszHooks, as.WriteStatsz)
		metricszHooks = append(metricszHooks, as.WriteMetricsz)
		fmt.Printf("nztm-server: adaptive controller: interval=%v enter=%.2f exit=%.2f min-ops=%d min-probes=%d dwell=%v probe-every=%d\n",
			*adInterval, *adEnter, *adExit, *adMinOps, *adMinProbe, *adDwell, *adProbeN)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nztm-server:", err)
		os.Exit(1)
	}

	// The replication plane sits between the listener and the executor:
	// its CheckRequest hook redirects writes off followers, holds bounded
	// reads to their staleness contract, and (via the store's commit
	// gate) delays write acks until enough followers applied the frame.
	var replNode *repl.Node
	var parts *fault.Partitions
	if *replAddr != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "nztm-server: -repl-addr requires -data-dir (the log is the stream)")
			os.Exit(2)
		}
		rcfg := repl.Config{
			NodeID:         *nodeID,
			KVAddr:         ln.Addr().String(),
			ReplAddr:       *replAddr,
			Advertise:      *advertise,
			PrimaryFrom:    *replFrom,
			AckPolicy:      *replAck,
			HeartbeatEvery: *hbEvery,
			LeaseTimeout:   *leaseTo,
			MaxReadWait:    *readWait,
			NewThread:      backend.NewThread,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		}
		if *peers != "" {
			rcfg.Peers = strings.Split(*peers, ",")
		}
		if fr != nil {
			rcfg.Recorder = fr.ForSource(trace.ReplSource)
		}
		// Every replication dial goes through the partition table, so the
		// soak harness can blackhole peers at runtime via /partitionz.
		parts = fault.NewPartitions()
		rcfg.Dial = parts.Dial
		statszHooks = append(statszHooks, parts.WriteStats)
		metricszHooks = append(metricszHooks, parts.WriteProm)
		replNode, err = repl.Start(store, rcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nztm-server:", err)
			os.Exit(1)
		}
		cfg.CheckRequest = replNode.CheckRequest
		statszHooks = append(statszHooks, replNode.WriteStatsz)
		metricszHooks = append(metricszHooks, replNode.WriteMetricsz)
		fmt.Printf("nztm-server: replication on %s: node=%d role=%s epoch=%d ack=%s peers=%d\n",
			replNode.ReplAddr(), *nodeID, replNode.Role(), replNode.Epoch(), *replAck, len(rcfg.Peers))
	}

	cfg.ExtraStatsz = chainWriters(statszHooks)
	cfg.ExtraMetricsz = chainWriters(metricszHooks)
	srv := server.New(store, backend.Reg, cfg)
	if plane != nil {
		ln = plane.WrapListener(ln)
		fmt.Printf("nztm-server: fault plane armed, seed=%d\n", *faultSd)
	}
	fmt.Printf("nztm-server: serving %s (%d shards × %d buckets, %d-thread hint, %d slot cap) on %s\n",
		store.System().Name(), *shards, *buckets, *threads, backend.Reg.Max(), ln.Addr())
	fmt.Printf("nztm-server: scheduler: executors=%d queue-depth=%d admission=%s (connections share the executor pool M:N)\n",
		cfg.Executors, srv.QueueCap(), cfg.Admission)

	if *statsz != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			srv.WriteStatsz(w)
		})
		mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			srv.WriteMetricsz(w)
		})
		mux.Handle("/tracez", srv.TracezHandler())
		mux.Handle("/slowz", srv.SlowzHandler())
		if parts != nil {
			// Runtime partition control: /partitionz?op=block&peer=<addr>&dir=in|out|both,
			// op=heal&peer=<addr>, op=healall, or bare for status.
			mux.HandleFunc("/partitionz", func(w http.ResponseWriter, r *http.Request) {
				q := r.URL.Query()
				switch q.Get("op") {
				case "block":
					if err := parts.Block(q.Get("peer"), q.Get("dir")); err != nil {
						http.Error(w, err.Error(), http.StatusBadRequest)
						return
					}
				case "heal":
					parts.Heal(q.Get("peer"))
				case "healall":
					parts.HealAll()
				case "", "status":
				default:
					http.Error(w, "unknown op (have block, heal, healall, status)", http.StatusBadRequest)
					return
				}
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				parts.WriteStats(w)
			})
		}
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() {
			if err := http.ListenAndServe(*statsz, mux); err != nil {
				fmt.Fprintln(os.Stderr, "nztm-server: statsz:", err)
			}
		}()
		fmt.Printf("nztm-server: /statsz /metricsz /tracez /slowz on http://%s (pprof=%v, trace=%d events/thread)\n",
			*statsz, *pprofOn, *traceN)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	// SIGQUIT is the live-diagnostics signal: dump the flight-recorder
	// rings and the slow-request ring to stderr and keep serving
	// (Notify overrides the runtime's kill-with-stacks default).
	diag := make(chan os.Signal, 1)
	signal.Notify(diag, syscall.SIGQUIT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	if disk != nil {
		// Recovery (and any repl bootstrap snapshot of a clean boot) is
		// done; everything the serving path writes from here on may fault.
		disk.Arm()
		fmt.Printf("nztm-server: disk faults armed: sites=%s prob=%g seed=%d\n",
			*diskSites, *diskProb, *diskSeed)
	}
	// The machine-readable ready line: recovery is complete and the
	// listener is accepting (crash soaks and scripts wait for this).
	fmt.Printf("nztm-server: ready addr=%s\n", ln.Addr())

serve:
	for {
		select {
		case <-diag:
			fmt.Fprintln(os.Stderr, "nztm-server: SIGQUIT: dumping diagnostics")
			if fr != nil {
				fr.Dump(os.Stderr)
			} else {
				fmt.Fprintln(os.Stderr, "nztm-server: flight recorder disabled (-trace 0)")
			}
			srv.DumpSlow(os.Stderr)
			fmt.Fprintln(os.Stderr, "nztm-server: diagnostics done")
		case sig := <-sigs:
			fmt.Printf("nztm-server: %v, draining...\n", sig)
			if err := srv.Shutdown(*drain); err != nil {
				// In-flight requests may still be running; closing the WAL
				// under them could tear a frame, so fail loudly instead.
				fmt.Fprintln(os.Stderr, "nztm-server:", err)
				os.Exit(1)
			}
			<-done
			break serve
		case err := <-done:
			fmt.Fprintln(os.Stderr, "nztm-server:", err)
			os.Exit(1)
		}
	}
	// Drained: flush + sync + close the WAL and release registry slots,
	// so a clean exit always recovers to exactly the acknowledged state.
	if adaptiveSys != nil {
		adaptiveSys.StopController()
	}
	if replNode != nil {
		replNode.Close()
	}
	if err := store.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "nztm-server: close:", err)
		os.Exit(1)
	}
	srv.WriteStatsz(os.Stdout)
}

// chainWriters folds stats/metrics appenders into one hook (nil when
// the list is empty, keeping the export paths branch-free).
func chainWriters(hooks []func(io.Writer)) func(io.Writer) {
	if len(hooks) == 0 {
		return nil
	}
	return func(w io.Writer) {
		for _, h := range hooks {
			h(w)
		}
	}
}
