// nztm-server serves a sharded transactional key-value store over TCP,
// backed by any of the repository's TM systems running in real-concurrency
// mode — the serving-path deployment of NZSTM.
//
// Usage:
//
//	nztm-server -addr :7420 -statsz :7421 -system nzstm -shards 16 -buckets 64 -threads 8
//
// The binary speaks the length-prefixed binary protocol of internal/server
// (use internal/server.Client or cmd/nztm-load to talk to it) and exposes an
// HTTP observability mux beside it: plain-text /statsz (counters, interval
// rates, latency histograms, contention hotspots), Prometheus /metricsz,
// JSON /tracez (per-thread flight-recorder event logs, -trace to enable),
// and net/http/pprof under /debug/pprof/ behind -pprof. SIGINT/SIGTERM
// trigger a graceful drain.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"nztm/internal/fault"
	"nztm/internal/kv"
	"nztm/internal/server"
	"nztm/internal/trace"
)

func main() {
	var (
		addr    = flag.String("addr", ":7420", "TCP listen address for the KV protocol")
		statsz  = flag.String("statsz", ":7421", "HTTP listen address for /statsz, /metricsz, /tracez (empty disables)")
		system  = flag.String("system", "nzstm", "backing TM system: "+strings.Join(kv.BackendNames(), ", "))
		shards  = flag.Int("shards", 16, "shard count")
		buckets = flag.Int("buckets", 64, "transactional buckets per shard")
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "expected concurrency hint (soft max: sizes initial TM tables; connections beyond it still get thread slots)")
		maxAtt  = flag.Int("max-attempts", 512, "per-request transaction attempt budget (0 = unlimited)")
		timeout = flag.Duration("timeout", 2*time.Second, "per-request retry deadline (0 = none)")
		infl    = flag.Int("max-inflight", 64, "max concurrently executing requests per connection")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
		faultSd = flag.Uint64("fault-seed", 0, "arm the fault-injection plane with this seed (0 = off)")
		backoff = flag.Duration("retry-backoff", 0, "base backoff between transaction retries (0 = immediate retry)")
		traceN  = flag.Int("trace", 0, "per-thread flight-recorder capacity in events (0 = tracing off; keeps the hot path allocation-free)")
		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the statsz mux")
	)
	flag.Parse()

	backend, err := kv.OpenBackend(*system, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nztm-server:", err)
		os.Exit(2)
	}
	sys := backend.Sys
	cfg := server.Config{
		MaxAttempts:    *maxAtt,
		RequestTimeout: *timeout,
		MaxInflight:    *infl,
		RetryBackoff:   *backoff,
	}
	var fr *trace.FlightRecorder
	if *traceN > 0 {
		fr = trace.New(*traceN)
		backend.Reg.BindRecorder(fr)
	}
	var plane *fault.Plane
	if *faultSd != 0 {
		fcfg := fault.DefaultConfig(*faultSd)
		if strings.EqualFold(*system, "glock") {
			// The global-lock baseline cannot retry (tm.Retry panics over
			// it); every other fault class stays on.
			fcfg.AbortProb = 0
		}
		plane = fault.New(fcfg)
		cfg.WrapThread = plane.WrapThread
		sys = plane.WrapSystem(sys)
		cfg.ExtraStatsz = plane.WriteStats
		if fr != nil {
			plane.BindRecorder(fr)
		}
	}
	store := kv.New(sys, *shards, *buckets)
	store.EnableMetrics()
	srv := server.New(store, backend.Reg, cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nztm-server:", err)
		os.Exit(1)
	}
	if plane != nil {
		ln = plane.WrapListener(ln)
		fmt.Printf("nztm-server: fault plane armed, seed=%d\n", *faultSd)
	}
	fmt.Printf("nztm-server: serving %s (%d shards × %d buckets, %d-thread hint, %d slot cap) on %s\n",
		store.System().Name(), *shards, *buckets, *threads, backend.Reg.Max(), ln.Addr())

	if *statsz != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			srv.WriteStatsz(w)
		})
		mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			srv.WriteMetricsz(w)
		})
		mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			srv.WriteTracez(w)
		})
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() {
			if err := http.ListenAndServe(*statsz, mux); err != nil {
				fmt.Fprintln(os.Stderr, "nztm-server: statsz:", err)
			}
		}()
		fmt.Printf("nztm-server: /statsz /metricsz /tracez on http://%s (pprof=%v, trace=%d events/thread)\n",
			*statsz, *pprofOn, *traceN)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Printf("nztm-server: %v, draining...\n", sig)
		if err := srv.Shutdown(*drain); err != nil {
			fmt.Fprintln(os.Stderr, "nztm-server:", err)
		}
		<-done
	case err := <-done:
		fmt.Fprintln(os.Stderr, "nztm-server:", err)
		os.Exit(1)
	}
	srv.WriteStatsz(os.Stdout)
}
