// nztm-stress tortures a TM system with real Go concurrency (not the
// simulator): bank transfers with auditing readers, forced-abort pressure,
// and optional artificially tiny patience so NZSTM's inflation/deflation
// machinery runs constantly. Run it under -race in CI.
//
// Usage:
//
//	nztm-stress -system NZSTM -threads 8 -duration 2s
//	nztm-stress -system NZSTM -patience 1   (inflation torture)
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nztm/internal/cm"
	"nztm/internal/core"
	"nztm/internal/dstm"
	"nztm/internal/dstm2sf"
	"nztm/internal/glock"
	"nztm/internal/logtm"
	"nztm/internal/tm"
)

// buildSystem returns the system under torture plus a registry its worker
// threads mint slots from. Core systems treat threads as a sizing hint and
// cap the registry at their MaxThreads; the fixed-table baselines size
// their per-thread structures for the registry's full capacity.
func buildSystem(name string, threads int, patience uint64, tracer *tm.Tracer) (tm.System, *tm.Registry, error) {
	world := tm.NewRealWorld()
	mk := func(v core.Variant) (tm.System, *tm.Registry) {
		reg := tm.NewRegistryWorld(0, world)
		cfg := core.DefaultConfig(v, threads)
		cfg.MaxThreads = reg.Max()
		cfg.AckPatience = patience
		cfg.Manager = cm.NewKarma(patience * 4)
		cfg.Tracer = tracer
		return core.New(world, cfg), reg
	}
	fixed := tm.NewRegistryWorld(threads, world)
	switch name {
	case "NZSTM":
		s, r := mk(core.NZ)
		return s, r, nil
	case "BZSTM":
		s, r := mk(core.BZ)
		return s, r, nil
	case "SCSS":
		s, r := mk(core.SCSS)
		return s, r, nil
	case "DSTM":
		return dstm.New(world, dstm.Config{Threads: threads}), fixed, nil
	case "DSTM2-SF":
		return dstm2sf.New(world, dstm2sf.Config{Threads: threads}), fixed, nil
	case "LogTM-SE":
		return logtm.New(world, logtm.Config{Threads: threads}), fixed, nil
	case "GlobalLock":
		return glock.New(world), fixed, nil
	}
	return nil, nil, fmt.Errorf("unknown system %q", name)
}

func main() {
	var (
		system   = flag.String("system", "NZSTM", "system to torture")
		threads  = flag.Int("threads", 8, "concurrent threads")
		duration = flag.Duration("duration", 2*time.Second, "run time")
		accounts = flag.Int("accounts", 16, "bank accounts")
		patience = flag.Uint64("patience", 50_000, "ack patience in ns (tiny = constant inflation)")
		trace    = flag.Int("trace", 0, "print the last N lifecycle trace events")
	)
	flag.Parse()

	var tracer *tm.Tracer
	if *trace > 0 {
		tracer = tm.NewTracer(*trace)
	}
	sys, reg, err := buildSystem(*system, *threads, *patience, tracer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nztm-stress:", err)
		os.Exit(2)
	}

	const initial = 1000
	objs := make([]tm.Object, *accounts)
	for i := range objs {
		d := tm.NewInts(1)
		d.V[0] = initial
		objs[i] = sys.NewObject(d)
	}

	var stop atomic.Bool
	var ops atomic.Uint64
	var audits atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < *threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := reg.NewThread()
			defer th.Close()
			rng := uint64(id)*0x9e3779b97f4a7c15 + 1
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if id%4 == 3 {
					// Auditor: full-sum read transaction.
					var sum int64
					if err := sys.Atomic(th, func(tx tm.Tx) error {
						sum = 0
						for _, o := range objs {
							sum += tx.Read(o).(*tm.Ints).V[0]
						}
						return nil
					}); err != nil {
						panic(err)
					}
					if sum != int64(*accounts)*initial {
						fmt.Fprintf(os.Stderr, "AUDIT FAILED: total %d, want %d\n",
							sum, int64(*accounts)*initial)
						os.Exit(1)
					}
					audits.Add(1)
					continue
				}
				from := int(rng % uint64(*accounts))
				to := int((rng >> 17) % uint64(*accounts))
				if from == to {
					continue
				}
				amt := int64(rng%50) + 1
				if err := sys.Atomic(th, func(tx tm.Tx) error {
					tx.Update(objs[from], func(d tm.Data) { d.(*tm.Ints).V[0] -= amt })
					tx.Update(objs[to], func(d tm.Data) { d.(*tm.Ints).V[0] += amt })
					return nil
				}); err != nil {
					panic(err)
				}
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	// Final audit.
	th := reg.NewThread()
	defer th.Close()
	var total int64
	if err := sys.Atomic(th, func(tx tm.Tx) error {
		total = 0
		for _, o := range objs {
			total += tx.Read(o).(*tm.Ints).V[0]
		}
		return nil
	}); err != nil {
		panic(err)
	}
	if total != int64(*accounts)*initial {
		fmt.Fprintf(os.Stderr, "FINAL AUDIT FAILED: total %d\n", total)
		os.Exit(1)
	}

	v := sys.Stats().View()
	fmt.Printf("%s: %d transfers, %d audits in %v — total conserved\n",
		sys.Name(), ops.Load(), audits.Load(), *duration)
	fmt.Printf("commits=%d aborts=%d (rate %.1f%%) abort-requests=%d waits=%d\n",
		v.Commits, v.Aborts, 100*v.AbortRate(), v.AbortRequests, v.Waits)
	fmt.Printf("inflations=%d deflations=%d locator-ops=%d backup-reuse=%d\n",
		v.Inflations, v.Deflations, v.LocatorOps, v.BackupReuse)
	if tracer != nil {
		fmt.Printf("\nlast %d of %d lifecycle events:\n", len(tracer.Snapshot()), tracer.Count())
		for _, e := range tracer.Snapshot() {
			fmt.Println(" ", e)
		}
	}
}
