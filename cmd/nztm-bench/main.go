// nztm-bench regenerates the paper's evaluation (§4): Figure 3 (simulator:
// LogTM-SE vs NZTM vs NZSTM), Figure 4 (Rock-style software systems:
// DSTM2-SF, BZSTM, SCSS, NZSTM normalised to a global lock), the abort
// statistics quoted in §4.4.1, the head-to-head gaps of §4.4.2, and five
// ablations: unresponsive threads (A1), indirection cost (A2), visible vs
// invisible readers (A3), contention managers (A4), and early release (A5).
//
// Usage:
//
//	nztm-bench -experiment fig3 [-ops 600] [-seed 42] [-v]
//	nztm-bench -experiment all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"nztm/internal/bench"
	"nztm/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "fig3",
			"one of: fig3, fig4, aborts, gaps, rockhybrid, unresponsive, indirection, readers, managers, release, all")
		ops      = flag.Int("ops", 600, "operations per thread per phase")
		seed     = flag.Uint64("seed", 42, "workload seed")
		threads  = flag.Int("threads", 15, "thread count for the aborts experiment")
		verbose  = flag.Bool("v", false, "print per-cell progress")
		csvPath  = flag.String("csv", "", "also write figure cells to this CSV file")
		jsonPath = flag.String("json", "", "also write figure cells to this JSON file (machine-readable)")
	)
	flag.Parse()
	csvOut = *csvPath
	jsonOut = *jsonPath

	cfg := harness.DefaultRunConfig()
	cfg.OpsPerThread = *ops
	cfg.Seed = *seed

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	run := func(name string) error {
		switch name {
		case "fig3":
			return figure(harness.Fig3Spec(), cfg, progress)
		case "fig4":
			return figure(harness.Fig4Spec(), cfg, progress)
		case "aborts":
			return harness.AbortReport(os.Stdout, *threads, cfg)
		case "gaps":
			return gaps(cfg)
		case "rockhybrid":
			return rockHybrid(cfg)
		case "unresponsive":
			return unresponsive(cfg)
		case "indirection":
			return indirection(cfg)
		case "readers":
			return readers(cfg)
		case "managers":
			return managers(cfg)
		case "release":
			return release(cfg)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"fig3", "fig4", "aborts", "gaps", "rockhybrid", "unresponsive", "indirection", "readers", "managers", "release"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "nztm-bench: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
	if jsonOut != "" {
		doc := struct {
			Benchmark string             `json:"benchmark"`
			Cells     []harness.CellJSON `json:"cells"`
		}{Benchmark: "sim-figures", Cells: jsonCells}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "nztm-bench: json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nztm-bench: json: %v\n", err)
			os.Exit(1)
		}
	}
}

// csvOut, when non-empty, receives the figure cells in CSV form
// (appending, so fig3 and fig4 can share one file).
var csvOut string

// jsonOut, when non-empty, collects every figure's cells and writes them
// as one JSON document when all experiments finish.
var (
	jsonOut   string
	jsonCells []harness.CellJSON
)

func figure(spec harness.FigureSpec, cfg harness.RunConfig, progress io.Writer) error {
	panels, err := harness.RunFigure(spec, cfg, progress)
	if err != nil {
		return err
	}
	harness.PrintFigure(os.Stdout, spec, panels)
	if jsonOut != "" {
		jsonCells = append(jsonCells, harness.JSONCells(spec, panels)...)
	}
	if csvOut != "" {
		f, err := os.OpenFile(csvOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		return harness.WriteCSV(f, spec, panels)
	}
	return nil
}

// gaps reproduces the §4.4.2 head-to-head claims: NZSTM within 2–5% of
// BZSTM, SCSS ≈ NZSTM except kmeans, NZSTM ≥ DSTM2-SF (clearly ahead on
// kmeans), and NZTM within 10–15% of LogTM-SE on low-conflict benchmarks.
func gaps(cfg harness.RunConfig) error {
	fmt.Println("== Head-to-head throughput ratios (8 threads) ==")
	rows, err := harness.Gaps(8, [][2]string{
		{"NZSTM", "BZSTM"},
		{"SCSS", "NZSTM"},
		{"NZSTM", "DSTM2-SF"},
		{"NZTM", "LogTM-SE"},
	}, cfg)
	if err != nil {
		return err
	}
	harness.PrintGaps(os.Stdout, rows)
	return nil
}

// rockHybrid reproduces the §4.4.2 hybrid-on-Rock observation: on
// hashtable-low at 16 threads most transactions commit in hardware and the
// hybrid clearly beats pure NZSTM.
func rockHybrid(cfg harness.RunConfig) error {
	wl, err := harness.WorkloadByName("hashtable-low")
	if err != nil {
		return err
	}
	hy, err := harness.RunSim("NZTM", wl, 16, cfg)
	if err != nil {
		return err
	}
	sw, err := harness.RunSim("NZSTM", wl, 16, cfg)
	if err != nil {
		return err
	}
	fmt.Println("== Hybrid vs software, hashtable-low, 16 threads (§4.4.2) ==")
	fmt.Printf("NZTM  throughput %8.3f ops/kcycle, hardware share %.0f%%\n",
		hy.Throughput(), 100*hy.Stats.HWShare())
	fmt.Printf("NZSTM throughput %8.3f ops/kcycle\n", sw.Throughput())
	fmt.Printf("speedup: %.0f%% (paper: >60%% with ~75%% hardware commits)\n",
		100*(hy.Throughput()/sw.Throughput()-1))
	return nil
}

// unresponsive is ablation A1: with injected stalls (preemptions/page
// faults), the blocking BZSTM waits behind unresponsive transactions while
// NZSTM inflates past them.
func unresponsive(cfg harness.RunConfig) error {
	// Rare but long stalls: the page-fault / untimely-preemption scenario
	// of §1. A blocking STM convoys behind each one for its full duration;
	// NZSTM's patience is bounded and it inflates past the victim.
	cfg.StallProb = 0.0002
	cfg.StallCycles = 5_000_000
	wl, err := harness.WorkloadByName("redblack-high")
	if err != nil {
		return err
	}
	fmt.Println("== Unresponsive-thread ablation (redblack-high, stalls injected) ==")
	fmt.Printf("%8s %12s %12s %10s %12s\n", "threads", "NZSTM", "BZSTM", "NZ/BZ", "inflations")
	for _, th := range []int{4, 8} {
		nz, err := harness.RunSim("NZSTM", wl, th, cfg)
		if err != nil {
			return err
		}
		bz, err := harness.RunSim("BZSTM", wl, th, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %12.3f %12.3f %9.2fx %12d\n",
			th, nz.Throughput(), bz.Throughput(),
			nz.Throughput()/bz.Throughput(), nz.Stats.Inflations)
	}
	return nil
}

// readers is ablation A3: visible versus invisible read sharing (§2 names
// both). Visible readers pay registration traffic but never validate;
// invisible readers are traffic-free but revalidate their read set at every
// open — read-dominated long transactions feel the O(n²).
func readers(cfg harness.RunConfig) error {
	fmt.Println("== Read-sharing ablation: visible vs invisible readers (8 threads) ==")
	fmt.Printf("%-18s %12s %12s %10s\n", "benchmark", "visible", "invisible", "vis/inv")
	for _, name := range []string{
		"hashtable-low", "hashtable-high", "redblack-low", "redblack-high",
		"linkedlist-low", "linkedlist-high", "vacation-low",
	} {
		wl, err := harness.WorkloadByName(name)
		if err != nil {
			return err
		}
		vis, err := harness.RunSim("NZSTM", wl, 8, cfg)
		if err != nil {
			return err
		}
		inv, err := harness.RunSim("NZSTM-iv", wl, 8, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %12.3f %12.3f %9.2fx\n",
			name, vis.Throughput(), inv.Throughput(), vis.Throughput()/inv.Throughput())
	}
	return nil
}

// managers is ablation A4: the paper's Karma-with-deadlock-flags policy
// (§4.3) against simpler contention managers on a conflict-heavy workload.
func managers(cfg harness.RunConfig) error {
	fmt.Println("== Contention-manager ablation (NZSTM, redblack-high, 8 threads) ==")
	fmt.Printf("%-12s %12s %12s %12s\n", "manager", "throughput", "abort-rate", "requests")
	for _, name := range []string{"karma", "timestamp", "aggressive", "polite"} {
		res, err := harness.RunManagerCell(name, "redblack-high", 8, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12.3f %11.1f%% %12d\n",
			name, res.Throughput(), 100*res.Stats.AbortRate(), res.Stats.AbortRequests)
	}
	return nil
}

// release is ablation A5: DSTM-style early release on the linked list —
// hand-over-hand traversal shrinks read sets from O(position) to O(1),
// attacking exactly the conflict pattern that keeps linkedlist from scaling.
func release(cfg harness.RunConfig) error {
	fmt.Println("== Early-release ablation (NZSTM linkedlist, 8 threads) ==")
	fmt.Printf("%-18s %12s %14s %10s\n", "mix", "plain", "early-release", "ER/plain")
	pairs := []struct {
		base string
		er   harness.Workload
	}{
		{"linkedlist-high", harness.ReleaseWorkload("linkedlist-er-high", benchHighMix())},
		{"linkedlist-low", harness.ReleaseWorkload("linkedlist-er-low", benchLowMix())},
	}
	for _, p := range pairs {
		base, err := harness.WorkloadByName(p.base)
		if err != nil {
			return err
		}
		plain, err := harness.RunSim("NZSTM", base, 8, cfg)
		if err != nil {
			return err
		}
		er, err := harness.RunSim("NZSTM", p.er, 8, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %12.3f %14.3f %9.2fx\n",
			p.base, plain.Throughput(), er.Throughput(), er.Throughput()/plain.Throughput())
	}
	return nil
}

// indirection is ablation A2: the cost of DSTM's two levels of indirection
// versus the zero-indirection systems, most visible with a single thread
// where no contention muddies the picture.
func indirection(cfg harness.RunConfig) error {
	fmt.Println("== Indirection ablation (1 thread, throughput normalised to DSTM) ==")
	fmt.Printf("%-18s %8s %10s %10s %10s\n", "benchmark", "DSTM", "DSTM2-SF", "BZSTM", "NZSTM")
	for _, name := range []string{"hashtable-low", "redblack-low", "linkedlist-low"} {
		wl, err := harness.WorkloadByName(name)
		if err != nil {
			return err
		}
		base, err := harness.RunSim("DSTM", wl, 1, cfg)
		if err != nil {
			return err
		}
		row := []float64{1}
		for _, sys := range []string{"DSTM2-SF", "BZSTM", "NZSTM"} {
			r, err := harness.RunSim(sys, wl, 1, cfg)
			if err != nil {
				return err
			}
			row = append(row, r.Throughput()/base.Throughput())
		}
		fmt.Printf("%-18s %8.2f %10.2f %10.2f %10.2f\n", name, row[0], row[1], row[2], row[3])
	}
	return nil
}

func benchHighMix() bench.Mix { return bench.HighContention }

func benchLowMix() bench.Mix { return bench.LowContention }
