// Crash-recovery soak (-crash): the durability analogue of the chaos
// soak. The parent process execs nztm-server as a child with the WAL's
// crash points armed (deterministic seeded kill-self at pre-append,
// mid-append, post-append, mid-snapshot and mid-truncate), hammers it
// with acknowledged writes, lets the injection SIGKILL the child
// mid-operation, restarts it against the same data directory, and
// verifies after every recovery that
//
//   - every acknowledged write survived (reads after restart must show
//     the last acknowledged value or a later issued-but-unacknowledged
//     one — never an older or unknown value);
//   - unacknowledged writes may be lost but are never corrupted (any
//     recovered value must be one the workload actually issued);
//   - the full cross-restart history, with crash-severed requests
//     recorded as lost, remains linearizable under internal/histcheck.
//
// Every few iterations (and at the end) it also runs the graceful path:
// an unarmed child is sent SIGTERM and must drain, flush the WAL and
// exit 0, and its acknowledged writes must be visible after the next
// boot. Sites, fsync policies (always/interval/never) and seeds rotate
// deterministically, so one -seed reproduces one injection schedule.
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"nztm/internal/fault"
	"nztm/internal/histcheck"
	"nztm/internal/kv"
	"nztm/internal/server"
	"nztm/internal/wal"
)

// crashCfg bundles the -crash mode's knobs.
type crashCfg struct {
	bin     string // nztm-server binary ("" = go build it)
	dir     string // data directory ("" = temp, removed on success)
	seed    uint64
	target  int // total crash-point injections to accumulate
	shards  int
	buckets int
	keys    int // keys per worker
	workers int
	limit   int // linearizability search budget
}

// effect is the result of one write op on its key: a value or absence.
type effect struct {
	del bool
	val string
}

func (e effect) String() string {
	if e.del {
		return "<absent>"
	}
	return fmt.Sprintf("%q", e.val)
}

// keyModel tracks one key's durability obligations since the last
// verified read (the "rebase point"):
//
//	base      — the state a post-recovery read proved (acknowledged, so
//	            durable: recovery may never regress past it);
//	lastAcked — the newest acknowledged write since the rebase; if any
//	            write was acked, base is no longer admissible;
//	lost      — writes whose response never arrived (the child died).
//	            Each may or may not have committed, and a lost write can
//	            commit after later acknowledged ones (its server-side
//	            transaction outlives the severed connection), so every
//	            lost effect stays admissible until the next rebase.
//
// Admissible recovered states: {lastAcked} (or {base} when nothing was
// acked) ∪ lost. Anything else is either a lost acknowledged write or a
// corrupt record.
type keyModel struct {
	base      effect
	lastAcked *effect
	lost      []effect
}

func (m *keyModel) touched() bool { return m.lastAcked != nil || len(m.lost) > 0 }

func (m *keyModel) admissible(found bool, val []byte) bool {
	match := func(e effect) bool {
		if e.del {
			return !found
		}
		return found && string(val) == e.val
	}
	if m.lastAcked != nil {
		if match(*m.lastAcked) {
			return true
		}
	} else if match(m.base) {
		return true
	}
	for _, e := range m.lost {
		if match(e) {
			return true
		}
	}
	return false
}

func (m *keyModel) rebase(found bool, val []byte) {
	m.base = effect{del: !found, val: string(val)}
	m.lastAcked = nil
	m.lost = nil
}

// crashSoak is the parent-side state across all child lifetimes.
type crashSoak struct {
	cfg crashCfg
	rec *histcheck.Recorder

	mu    sync.Mutex
	model map[string]*keyModel

	injections [wal.CrashPointCount]int
	timeouts   int // children the parent had to kill (no injection fired)
	iters      int
	gracefuls  int
	acked      atomic.Uint64
	lost       atomic.Uint64
}

func (cs *crashSoak) total() int {
	n := 0
	for _, v := range cs.injections {
		n += v
	}
	return n
}

func (cs *crashSoak) modelFor(key string) *keyModel {
	m := cs.model[key]
	if m == nil {
		m = &keyModel{base: effect{del: true}} // fresh stores hold nothing
		cs.model[key] = m
	}
	return m
}

// ack folds an acknowledged request's writes into the model.
func (cs *crashSoak) ack(ops []kv.Op) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i := range ops {
		m := cs.modelFor(ops[i].Key)
		switch ops[i].Kind {
		case kv.OpPut:
			m.lastAcked = &effect{val: string(ops[i].Value)}
		case kv.OpDelete:
			m.lastAcked = &effect{del: true}
		}
	}
	cs.acked.Add(1)
}

// markLost records a request severed by the child's death: each of its
// writes may or may not have committed.
func (cs *crashSoak) markLost(ops []kv.Op) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i := range ops {
		m := cs.modelFor(ops[i].Key)
		switch ops[i].Kind {
		case kv.OpPut:
			m.lost = append(m.lost, effect{val: string(ops[i].Value)})
		case kv.OpDelete:
			m.lost = append(m.lost, effect{del: true})
		}
	}
	cs.lost.Add(1)
}

// touchedKeys returns, sorted, every key with outstanding obligations.
func (cs *crashSoak) touchedKeys() []string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var keys []string
	for k, m := range cs.model {
		if m.touched() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------
// Child process management.

// child is one nztm-server process under parent control.
type child struct {
	cmd    *exec.Cmd
	exitCh chan error

	mu           sync.Mutex
	addr         string
	readyCh      chan struct{}
	readyOnce    sync.Once
	sites        []string // CRASH-POINT markers seen on stderr
	diskSites    []string // DISK-FAULT markers seen on stderr
	tail         []string // last output lines, for post-mortem
	parentKilled atomic.Bool
}

// note records one output line, firing the ready latch and collecting
// crash markers. Called synchronously from the exec pipe copiers, so
// cmd.Wait returning implies every marker has been seen.
func (c *child) note(line string) {
	c.mu.Lock()
	c.tail = append(c.tail, line)
	if len(c.tail) > 40 {
		c.tail = c.tail[len(c.tail)-40:]
	}
	if a, ok := strings.CutPrefix(line, "nztm-server: ready addr="); ok {
		c.addr = strings.TrimSpace(a)
		c.readyOnce.Do(func() { close(c.readyCh) })
	}
	if strings.HasPrefix(line, fault.CrashMarkerPrefix) {
		for _, f := range strings.Fields(line) {
			if s, ok := strings.CutPrefix(f, "site="); ok {
				c.sites = append(c.sites, s)
			}
		}
	}
	if strings.HasPrefix(line, fault.DiskMarkerPrefix) {
		for _, f := range strings.Fields(line) {
			if s, ok := strings.CutPrefix(f, "site="); ok {
				c.diskSites = append(c.diskSites, s)
			}
		}
	}
	c.mu.Unlock()
}

// diskMarkers returns the DISK-FAULT sites seen so far on this child's
// stderr (safe after reap: the pipe copiers run before Wait returns).
func (c *child) diskMarkers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.diskSites...)
}

// lineWriter feeds an io.Writer stream to note line by line. Using a
// Writer (not StdoutPipe) makes cmd.Wait block until the stream is
// fully drained — no marker can race the exit status.
type lineWriter struct {
	c   *child
	buf []byte
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := strings.IndexByte(string(w.buf), '\n')
		if i < 0 {
			return len(p), nil
		}
		w.c.note(string(w.buf[:i]))
		w.buf = w.buf[i+1:]
	}
}

// startChild launches nztm-server and waits for its ready line (which
// the server only prints after recovery completes).
func (cs *crashSoak) startChild(extra ...string) (*child, error) {
	args := []string{
		"-addr", "127.0.0.1:0", "-statsz", "", "-system", "nzstm",
		"-shards", fmt.Sprint(cs.cfg.shards), "-buckets", fmt.Sprint(cs.cfg.buckets),
		"-threads", "4", "-drain", "5s",
		"-data-dir", cs.cfg.dir,
		"-fsync-interval", "10ms", "-snapshot-every", "25ms",
	}
	args = append(args, extra...)
	c := &child{
		cmd:     exec.Command(cs.cfg.bin, args...),
		exitCh:  make(chan error, 1),
		readyCh: make(chan struct{}),
	}
	c.cmd.Stdout = &lineWriter{c: c}
	c.cmd.Stderr = &lineWriter{c: c}
	if err := c.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", cs.cfg.bin, err)
	}
	go func() { c.exitCh <- c.cmd.Wait() }()
	select {
	case <-c.readyCh:
		return c, nil
	case err := <-c.exitCh:
		return nil, fmt.Errorf("child exited before ready (%v):\n%s", err, c.dumpTail())
	case <-time.After(20 * time.Second):
		c.kill()
		<-c.exitCh
		return nil, fmt.Errorf("child not ready after 20s:\n%s", c.dumpTail())
	}
}

func (c *child) kill() {
	c.parentKilled.Store(true)
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
	}
}

func (c *child) dumpTail() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return "  | " + strings.Join(c.tail, "\n  | ")
}

// reap waits for the child to die (killing it if nothing ends it within
// grace) and returns the crash sites that fired plus whether the parent
// had to kill it.
func (c *child) reap(grace time.Duration) (sites []string, killed bool) {
	select {
	case <-c.exitCh:
	case <-time.After(grace):
		c.kill()
		<-c.exitCh
	}
	c.mu.Lock()
	sites = append(sites, c.sites...)
	c.mu.Unlock()
	return sites, c.parentKilled.Load()
}

// ---------------------------------------------------------------------
// Verification and load.

// dialChild connects to the child with short retries (its listener is
// up, but the accept loop may still be scheduling).
func dialChild(c *child) (*server.Client, error) {
	var err error
	for i := 0; i < 40; i++ {
		var cl *server.Client
		if cl, err = server.Dial(c.addr); err == nil {
			return cl, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return nil, err
}

// verify reads back every key with outstanding obligations and checks
// the recovered value is admissible, rebasing the model key by key. The
// reads are real acknowledged operations (recorded into the history and
// durability-gated by the server), so a completed verify proves the
// observed state is itself recoverable. ok=false means the child died
// mid-verify (a snapshot-site injection can fire under read-only load);
// the injection still counts and the next boot re-verifies.
func (cs *crashSoak) verify(c *child) (ok bool, err error) {
	keys := cs.touchedKeys()
	if len(keys) == 0 {
		return true, nil
	}
	cl, err := dialChild(c)
	if err != nil {
		return false, nil // child died before accepting: retry next boot
	}
	defer cl.Close()
	// A read-back should take milliseconds; a child that wedges instead
	// of answering is killed so the blocked Do unwinds with a conn error.
	watchdog := time.AfterFunc(15*time.Second, c.kill)
	defer watchdog.Stop()
	verifier := cs.cfg.workers // history client IDs: workers, then this
	for _, k := range keys {
		ops := []kv.Op{{Kind: kv.OpGet, Key: k}}
		p := cs.rec.Begin(verifier, ops)
		res, err := cl.Do(ops)
		if err != nil {
			p.Lost()
			return false, nil
		}
		p.Done(res)
		cs.mu.Lock()
		m := cs.modelFor(k)
		if !m.admissible(res[0].Found, res[0].Value) {
			got := effect{del: !res[0].Found, val: string(res[0].Value)}
			detail := fmt.Sprintf("key %s recovered as %v; admissible: lastAcked=%v base=%v lost=%v",
				k, got, m.lastAcked, m.base, m.lost)
			cs.mu.Unlock()
			return true, fmt.Errorf("acknowledged write lost or corrupted after recovery: %s", detail)
		}
		m.rebase(res[0].Found, res[0].Value)
		cs.mu.Unlock()
	}
	return true, nil
}

// load drives acknowledged writes until the child dies or the deadline
// passes. Worker w owns keys "w<w>-k<i>", so per-key write order equals
// issue order and the admissibility model stays exact; batches pair
// neighbouring keys of one worker (often crossing shards, exercising
// multi-shard frame identity vectors at recovery). A watchdog kills the
// child at the deadline, so even a child that hangs requests (instead
// of crashing) cannot wedge a worker inside a blocking Do.
func (cs *crashSoak) load(c *child, iter int, deadline time.Duration) {
	var wg sync.WaitGroup
	stop := time.Now().Add(deadline)
	watchdog := time.AfterFunc(deadline+time.Second, c.kill)
	defer watchdog.Stop()
	for w := 0; w < cs.cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newWorkloadRNG(cs.cfg.seed+uint64(iter)*131, w)
			cl, err := dialChild(c)
			if err != nil {
				return
			}
			defer cl.Close()
			for seq := 0; time.Now().Before(stop); seq++ {
				key := func(i int) string { return fmt.Sprintf("w%d-k%02d", w, i) }
				val := []byte(fmt.Sprintf("w%d.%d.%d", w, iter, seq))
				k := rng.intn(cs.cfg.keys)
				var ops []kv.Op
				switch r := rng.intn(100); {
				case r < 10:
					// Two-key atomic batch on a neighbouring pair.
					ops = []kv.Op{
						{Kind: kv.OpPut, Key: key(k &^ 1), Value: val},
						{Kind: kv.OpPut, Key: key(k | 1), Value: val},
					}
				case r < 25:
					ops = []kv.Op{{Kind: kv.OpDelete, Key: key(k)}}
				case r < 40:
					ops = []kv.Op{{Kind: kv.OpGet, Key: key(k)}}
				default:
					ops = []kv.Op{{Kind: kv.OpPut, Key: key(k), Value: val}}
				}
				p := cs.rec.Begin(w, ops)
				res, err := cl.Do(ops)
				switch {
				case err == nil:
					p.Done(res)
					cs.ack(ops)
				case errors.Is(err, kv.ErrBudget):
					p.Discard() // clean rejection: provably no effect
				default:
					// The child died under us: outcome unknown.
					p.Lost()
					cs.markLost(ops)
					return
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
}

// ---------------------------------------------------------------------
// Iterations.

// crashProb picks the per-visit firing probability for a site: append
// sites are visited once per logged write (let a few dozen commits land
// first), snapshot-plane sites only a few times a second (fire fast).
func crashProb(site wal.CrashPoint) float64 {
	switch site {
	case wal.CrashMidSnapshot:
		return 0.5
	case wal.CrashMidTruncate:
		return 0.6
	default:
		return 0.08
	}
}

var crashFsyncs = [...]string{"always", "interval", "never"}

// iterate runs one armed child lifetime: boot (recovers the previous
// crash), verify, load until the injection kills it, classify.
func (cs *crashSoak) iterate(iter int, site wal.CrashPoint, fsync string) error {
	cs.iters++
	seed := cs.cfg.seed + uint64(iter)*7919 + 1
	c, err := cs.startChild(
		"-fsync", fsync,
		"-crash-seed", fmt.Sprint(seed),
		"-crash-sites", site.String(),
		"-crash-prob", fmt.Sprint(crashProb(site)),
	)
	if err != nil {
		return err
	}
	verified, err := cs.verify(c)
	if err != nil {
		c.kill()
		c.reap(time.Second)
		return fmt.Errorf("iter %d (site %s, fsync %s): %w", iter, site, fsync, err)
	}
	if verified {
		cs.load(c, iter, 8*time.Second)
	}
	sites, killed := c.reap(5 * time.Second)
	for _, s := range sites {
		if p, ok := fault.CrashSiteByName(s); ok {
			cs.injections[p]++
		}
	}
	if len(sites) == 0 {
		if !killed {
			return fmt.Errorf("iter %d: child died with no crash marker and no parent kill:\n%s",
				iter, c.dumpTail())
		}
		cs.timeouts++
	}
	return nil
}

// gracefulCheck runs the clean-shutdown path: an unarmed child must
// recover, serve acknowledged writes, and exit 0 on SIGTERM after
// flushing the WAL — which the next boot's verify then proves durable.
func (cs *crashSoak) gracefulCheck(round int) error {
	cs.gracefuls++
	c, err := cs.startChild("-fsync", crashFsyncs[round%len(crashFsyncs)])
	if err != nil {
		return err
	}
	verified, err := cs.verify(c)
	if err != nil {
		c.kill()
		c.reap(time.Second)
		return fmt.Errorf("graceful round %d: %w", round, err)
	}
	if !verified {
		c.kill()
		c.reap(time.Second)
		return fmt.Errorf("graceful round %d: unarmed child died during verify:\n%s", round, c.dumpTail())
	}
	cl, err := dialChild(c)
	if err != nil {
		c.kill()
		c.reap(time.Second)
		return fmt.Errorf("graceful round %d: dial: %w", round, err)
	}
	watchdog := time.AfterFunc(15*time.Second, c.kill)
	defer watchdog.Stop()
	for i := 0; i < 4; i++ {
		ops := []kv.Op{{Kind: kv.OpPut, Key: fmt.Sprintf("w%d-k%02d", i%cs.cfg.workers, i),
			Value: []byte(fmt.Sprintf("graceful.%d.%d", round, i))}}
		p := cs.rec.Begin(cs.cfg.workers, ops)
		res, err := cl.Do(ops)
		if err != nil {
			p.Lost()
			cl.Close()
			c.kill()
			c.reap(time.Second)
			return fmt.Errorf("graceful round %d: write: %w", round, err)
		}
		p.Done(res)
		cs.ack(ops)
	}
	cl.Close()
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("graceful round %d: signal: %w", round, err)
	}
	select {
	case err := <-c.exitCh:
		if err != nil {
			return fmt.Errorf("graceful round %d: SIGTERM exit was not 0: %v\n%s",
				round, err, c.dumpTail())
		}
	case <-time.After(15 * time.Second):
		c.kill()
		<-c.exitCh
		return fmt.Errorf("graceful round %d: child ignored SIGTERM for 15s:\n%s", round, c.dumpTail())
	}
	return nil
}

// runCrash is the -crash entry point.
func runCrash(cfg crashCfg) error {
	cleanups := []string{}
	if cfg.bin == "" {
		tmp, err := os.MkdirTemp("", "nztm-crash-bin-")
		if err != nil {
			return err
		}
		cleanups = append(cleanups, tmp)
		cfg.bin = filepath.Join(tmp, "nztm-server")
		out, err := exec.Command("go", "build", "-o", cfg.bin, "nztm/cmd/nztm-server").CombinedOutput()
		if err != nil {
			return fmt.Errorf("building nztm-server (pass -server-bin to skip): %v\n%s", err, out)
		}
	}
	if cfg.dir == "" {
		tmp, err := os.MkdirTemp("", "nztm-crash-data-")
		if err != nil {
			return err
		}
		cleanups = append(cleanups, tmp)
		cfg.dir = tmp
	}

	cs := &crashSoak{cfg: cfg, rec: histcheck.NewRecorder(), model: make(map[string]*keyModel)}
	fmt.Printf("nztm-soak: crash mode: target=%d injections, dir=%s, seed=%d (%d shards, %d workers × %d keys)\n",
		cfg.target, cfg.dir, cfg.seed, cfg.shards, cfg.workers, cfg.keys)

	sites := []wal.CrashPoint{
		wal.CrashPreAppend, wal.CrashMidAppend, wal.CrashPostAppend,
		wal.CrashMidSnapshot, wal.CrashMidTruncate,
	}
	start := time.Now()
	maxIters := cfg.target*3 + 25
	for iter := 0; cs.total() < cfg.target; iter++ {
		if iter >= maxIters {
			return fmt.Errorf("only %d of %d injections after %d iterations (per-site: %s)",
				cs.total(), cfg.target, iter, cs.siteSummary())
		}
		if iter > 0 && iter%50 == 0 {
			if err := cs.gracefulCheck(iter / 50); err != nil {
				return err
			}
		}
		if err := cs.iterate(iter, sites[iter%len(sites)], crashFsyncs[iter%len(crashFsyncs)]); err != nil {
			return err
		}
		if (iter+1)%25 == 0 {
			fmt.Printf("nztm-soak: iter %d: %d/%d injections (%s), %d acked, %d lost, %d timeouts\n",
				iter+1, cs.total(), cfg.target, cs.siteSummary(),
				cs.acked.Load(), cs.lost.Load(), cs.timeouts)
		}
	}
	// Two final graceful rounds: the first proves SIGTERM flushes, the
	// second that a clean shutdown's state recovers byte-for-byte.
	if err := cs.gracefulCheck(1000); err != nil {
		return err
	}
	if err := cs.gracefulCheck(1001); err != nil {
		return err
	}
	for _, s := range sites {
		if cs.injections[s] == 0 {
			return fmt.Errorf("site %s never fired (per-site: %s)", s, cs.siteSummary())
		}
	}

	hist := cs.rec.History()
	ckStart := time.Now()
	res := histcheck.CheckWithLimit(hist, cfg.limit)
	fmt.Printf("nztm-soak: crash summary: %d injections in %d iterations (%s), %d parent kills, %d graceful exits, %d acked, %d lost, %v elapsed\n",
		cs.total(), cs.iters, cs.siteSummary(), cs.timeouts, cs.gracefuls,
		cs.acked.Load(), cs.lost.Load(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("nztm-soak: checked %d ops in %d partitions (%d states visited) in %v\n",
		res.Ops, res.Partitions, res.Visited, time.Since(ckStart).Round(time.Millisecond))
	if !res.Ok {
		if res.Capped {
			return fmt.Errorf("linearizability check exhausted its %d-state budget: %v", cfg.limit, res.Violation)
		}
		return fmt.Errorf("recovered history is NOT linearizable: %v", res.Violation)
	}
	for _, d := range cleanups {
		os.RemoveAll(d)
	}
	return nil
}

func (cs *crashSoak) siteSummary() string {
	parts := make([]string, 0, wal.CrashPointCount)
	for p := wal.CrashPoint(0); p < wal.CrashPointCount; p++ {
		parts = append(parts, fmt.Sprintf("%s=%d", p, cs.injections[p]))
	}
	return strings.Join(parts, " ")
}
