// nztm-soak is the serving stack's end-to-end torture test: it starts an
// in-process nztm-server with the fault plane armed (injected transaction
// aborts, latency spikes, mid-transaction stalls, connection resets, torn
// writes, slow reads), hammers it with concurrent clients that reconnect
// through the chaos, records every request's invocation/response window,
// and then verifies the recorded history with internal/histcheck.
//
// It exits nonzero if any of the following fail:
//
//   - linearizability: the recorded history admits no legal sequential
//     order under kv.Store semantics;
//   - progress hygiene: goroutines leak past server shutdown;
//   - chaos liveness: the fault plane injected nothing (a misconfigured
//     soak proves nothing).
//
// Usage:
//
//	nztm-soak -system nzstm -seed 1 -duration 30s -clients 4 -rate 200
//
// Determinism: the seed fixes every injection schedule and the client
// workload; goroutine interleaving still varies run to run, which is the
// point — each run explores a different schedule of the same fault load.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"nztm/internal/adaptive"
	"nztm/internal/fault"
	"nztm/internal/histcheck"
	"nztm/internal/kv"
	"nztm/internal/server"
	"nztm/internal/trace"
	"nztm/internal/wal"
)

func main() {
	var (
		system   = flag.String("system", "nzstm", "backing TM system: "+strings.Join(kv.BackendNames(), ", "))
		seed     = flag.Uint64("seed", 1, "fault-plane and workload seed")
		duration = flag.Duration("duration", 5*time.Second, "soak duration")
		clients  = flag.Int("clients", 4, "concurrent client connections")
		keys     = flag.Int("keys", 16, "workload key-space size (grouped in cliques of 4)")
		shards   = flag.Int("shards", 4, "store shard count")
		buckets  = flag.Int("buckets", 16, "transactional buckets per shard")
		threads  = flag.Int("threads", 4, "TM thread pool size")
		rate     = flag.Int("rate", 200, "target ops/sec per client (0 = unthrottled; keep the history checkable)")
		limit    = flag.Int("limit", 0, "linearizability search budget in states (0 = checker default)")
		traceN   = flag.Int("trace", 0, "per-thread flight-recorder capacity in events; on failure the recorder of every registered thread is dumped to stderr (0 = off)")
		dataDir  = flag.String("data-dir", "", "run the store crash-durable (WAL + snapshots) in this directory; the leak gate then also covers Store.Close")

		crashMode   = flag.Bool("crash", false, "crash-recovery soak: repeatedly kill a child nztm-server at WAL crash points and verify recovery (see DESIGN.md §12)")
		crashTarget = flag.Int("crash-target", 200, "crash mode: total crash-point injections to accumulate across all five sites")
		crashDir    = flag.String("crash-data-dir", "", "crash mode: persistent data directory (default: a temp dir, removed on success)")
		serverBin   = flag.String("server-bin", "", "crash/failover mode: path to an nztm-server binary (default: go build it)")

		failoverMode = flag.Bool("failover", false, "replication failover soak: run a 3-node cluster, repeatedly SIGKILL the primary mid-load, require automatic promotion, no acked-write loss, fencing of the deposed primary, and a linearizable cross-failover history (see DESIGN.md §13)")
		failKills    = flag.Int("kills", 50, "failover mode: primary SIGKILLs to survive")
		failParts    = flag.Int("partitions", 4, "failover mode: split-brain episodes after the kills — isolate the primary at the replication layer, require a majority-side election, no zombie acks, self-deposition on heal")

		diskfaultMode = flag.Bool("diskfault", false, "disk-fault soak: run child nztm-servers with injected disk I/O errors (EIO, short writes, ENOSPC, fsync failure) under load and verify fail-stop/degraded semantics plus recovery (see DESIGN.md §17)")
		diskTarget    = flag.Int("diskfault-target", 120, "diskfault mode: total injected I/O errors to accumulate across all sites")

		adaptiveM = flag.Bool("adaptive", false, "adaptive-backend chaos soak: force -system adaptive, run the mode controller with aggressive thresholds under the fault plane, and require at least -min-switches group mode switches on top of the usual linearizability and leak gates (see DESIGN.md §15)")
		minSw     = flag.Int("min-switches", 4, "adaptive mode: minimum total group mode switches the soak must observe")

		oversub = flag.Bool("oversubscribed", false, "oversubscription soak: pin the executor pool to -threads, shrink the admission queue, and raise -clients to ≫ executors (min 16×), so N connections contend for M slots under chaos; adds a zero-slot-leak gate and requires the scheduler to have shed load (see DESIGN.md §14)")
	)
	flag.Parse()
	adaptiveMin := -1
	if *adaptiveM {
		*system = "adaptive"
		adaptiveMin = *minSw
	}
	if *oversub && *clients < 16**threads {
		*clients = 16 * *threads
	}
	if *diskfaultMode {
		err := runDiskFault(diskCfg{
			bin: *serverBin, dir: *crashDir, seed: *seed, target: *diskTarget,
			shards: *shards, buckets: *buckets, keys: 12, workers: 2, limit: *limit,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nztm-soak: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("nztm-soak: PASS")
		return
	}
	if *failoverMode {
		err := runFailover(failCfg{
			bin: *serverBin, seed: *seed, kills: *failKills, partitions: *failParts,
			shards: *shards, buckets: *buckets, keys: 12, workers: 3, limit: *limit,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nztm-soak: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("nztm-soak: PASS")
		return
	}
	if *crashMode {
		err := runCrash(crashCfg{
			bin: *serverBin, dir: *crashDir, seed: *seed, target: *crashTarget,
			shards: *shards, buckets: *buckets, keys: 12, workers: 2, limit: *limit,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nztm-soak: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("nztm-soak: PASS")
		return
	}
	if err := run(*system, *seed, *duration, *clients, *keys, *shards, *buckets, *threads, *rate, *limit, *traceN, *dataDir, *oversub, adaptiveMin); err != nil {
		fmt.Fprintln(os.Stderr, "nztm-soak: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("nztm-soak: PASS")
}

func run(system string, seed uint64, duration time.Duration, clients, keys, shards, buckets, threads, rate, limit, traceN int, dataDir string, oversub bool, adaptiveMin int) error {
	backend, err := kv.OpenBackend(system, threads)
	if err != nil {
		return err
	}
	cfg := fault.DefaultConfig(seed)
	if strings.EqualFold(system, "glock") {
		// The global-lock baseline cannot retry (tm.Retry panics over it),
		// so injected aborts are off; every other fault class stays on.
		cfg.AbortProb = 0
	}
	plane := fault.New(cfg)
	// With -trace, every connection thread records into a per-slot flight
	// ring and the fault plane's connection layer into the plane ring; on
	// any gate failure the full event log is dumped for post-mortem.
	var fr *trace.FlightRecorder
	if traceN > 0 {
		fr = trace.New(traceN)
		backend.Reg.BindRecorder(fr)
		plane.BindRecorder(fr)
	}
	// srv is assigned below; dumpTrace is declared early so every later
	// failure path can use it. On failure it dumps both the flight rings
	// and the slow-request ring — which requests were slow and in which
	// stage — beside the event log.
	var srv *server.Server
	dumpTrace := func() {
		if fr != nil {
			fmt.Fprintf(os.Stderr, "--- flight recorder (%d events) ---\n", fr.Count())
			fr.Dump(os.Stderr)
		}
		if srv != nil {
			srv.DumpSlow(os.Stderr)
		}
	}
	var store *kv.Store
	if dataDir != "" {
		// Durable soak: the chaos plane injects aborts and stalls while
		// every commit is WAL-logged and snapshots truncate behind it; the
		// shutdown leak gate below then also proves Store.Close unwinds
		// the snapshotter and WAL goroutines.
		dur := kv.Durability{
			Dir:           dataDir,
			Fsync:         wal.FsyncInterval,
			FsyncInterval: 10 * time.Millisecond,
			SnapshotEvery: 200 * time.Millisecond,
			NewThread:     backend.NewThread,
		}
		if fr != nil {
			dur.Recorder = fr.ForSource(trace.WALSource)
		}
		var st *wal.State
		store, st, err = kv.NewDurable(plane.WrapSystem(backend.Sys), shards, buckets, dur)
		if err != nil {
			return err
		}
		fmt.Printf("nztm-soak: durable in %s: recovered replayed=%d dropped=%d truncated=%d in %v\n",
			dataDir, st.ReplayedFrames, st.DroppedFrames, st.TruncatedBytes, st.Duration.Round(time.Microsecond))
	} else {
		store = kv.New(plane.WrapSystem(backend.Sys), shards, buckets)
	}
	store.EnableMetrics()
	// Adaptive soak: the facade is the pre-fault-wrap system (the fault
	// wrapper forwards group masks), probes are frequent so exits stay
	// reachable, and the mode lines land in the final statsz dump.
	var adSys *adaptive.System
	if adaptiveMin >= 0 {
		as, ok := backend.Sys.(*adaptive.System)
		if !ok {
			return fmt.Errorf("-adaptive requires the adaptive backend, got %s", backend.Sys.Name())
		}
		adSys = as
		as.SetProbeEvery(2)
		if fr != nil {
			as.BindRecorder(fr.ForSource(trace.AdaptiveSource))
		}
	}
	scfg := server.Config{
		MaxAttempts:    512,
		RequestTimeout: 2 * time.Second,
		RetryBackoff:   100 * time.Microsecond,
		ExtraStatsz:    plane.WriteStats,
		WrapThread:     plane.WrapThread,
	}
	if adSys != nil {
		scfg.ExtraStatsz = func(w io.Writer) {
			plane.WriteStats(w)
			adSys.WriteStatsz(w)
		}
	}
	if oversub {
		// Pin the pool to the thread count and shrink the queue so the
		// N:M ratio is real and queue-full sheds actually happen under
		// chaos — the soak then proves sheds are clean (retried or
		// discarded, never a hang, never a non-linearizable effect).
		scfg.Executors = backend.Executors(threads)
		scfg.QueueDepth = 2 * scfg.Executors
	}
	srv = server.New(store, backend.Reg, scfg)

	// Goroutine baseline before anything soak-owned starts; everything the
	// soak spawns must be gone again after shutdown.
	g0 := runtime.NumGoroutine()

	// The controller starts after the baseline so the goroutine leak gate
	// also proves StopController unwinds it. Thresholds are deliberately
	// aggressive — hair-trigger enter, near-adjacent exit, minimal dwell —
	// so chaos makes groups thrash between modes all soak long, which is
	// exactly the switch-protocol stress the linearizability gate then
	// has to absolve.
	if adSys != nil {
		err := adSys.StartController(store, adaptive.ControllerConfig{
			Interval:       50 * time.Millisecond,
			EnterAbortRate: 0.05,
			ExitAbortRate:  0.02,
			MinOps:         4,
			MinProbes:      2,
			MinDwell:       100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		fmt.Printf("nztm-soak: adaptive controller armed: enter=0.05 exit=0.02 dwell=100ms probe-every=2, need >=%d switches\n", adaptiveMin)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(plane.WrapListener(ln)) }()
	fmt.Printf("nztm-soak: %s on %s, seed=%d, %d clients for %v\n",
		store.System().Name(), addr, seed, clients, duration)
	if oversub {
		fmt.Printf("nztm-soak: oversubscribed: %d connections over %d executors (queue %d, admission %s)\n",
			clients, scfg.Executors, srv.QueueCap(), server.AdmitReject)
	}

	rec := histcheck.NewRecorder()
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			soakClient(id, addr, seed, keys, rate, deadline, rec)
		}(c)
	}
	wg.Wait()

	if err := srv.Shutdown(10 * time.Second); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveDone; err != nil && !errors.Is(err, server.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	// Close before the leak gate: the snapshotter and WAL sync goroutines
	// must unwind with everything else (no-op for memory-only stores).
	if err := store.Close(); err != nil {
		return fmt.Errorf("store close: %w", err)
	}
	if adSys != nil {
		adSys.StopController()
		st := adSys.ModeStats()
		toPes, toOpt := st.SwitchesToPessimistic.Load(), st.SwitchesToOptimistic.Load()
		fmt.Printf("nztm-soak: adaptive: switches pes=%d opt=%d probes=%d pes-entries=%d drain-waits=%d drain-timeouts=%d vetoes dwell=%d volume=%d\n",
			toPes, toOpt, st.Probes.Load(), st.PessimisticEntries.Load(),
			st.DrainWaits.Load(), st.DrainTimeouts.Load(),
			st.VetoedDwell.Load(), st.VetoedVolume.Load())
		if total := toPes + toOpt; total < uint64(adaptiveMin) {
			dumpTrace()
			return fmt.Errorf("adaptive soak observed %d mode switches, need >= %d — contention signals never crossed the thresholds", total, adaptiveMin)
		}
	}

	srv.WriteStatsz(os.Stdout)

	// Chaos liveness: a soak that injected nothing proved nothing.
	if plane.Injected() == 0 {
		return errors.New("fault plane injected zero faults — soak configuration is inert")
	}

	// Slot hygiene: after shutdown released the executor pool and Close
	// released the WAL thread, every registry slot must be back. A nonzero
	// residue means a scheduler or durability path leaked its TM thread.
	if act := backend.Reg.Active(); act != 0 {
		dumpTrace()
		return fmt.Errorf("registry slot leak: %d slots still active after shutdown", act)
	}
	if oversub {
		st := srv.SchedStats()
		fmt.Printf("nztm-soak: oversubscribed: enqueued=%d completed=%d rejected=%d slow_client_drops=%d\n",
			st.Enqueued.Load(), st.Completed.Load(), st.Rejected.Load(), st.SlowClientDrops.Load())
		// The ratio must have been real: work flowed through the shared
		// pool, and some of it actually hit the queue-full path.
		if st.Completed.Load() == 0 {
			return errors.New("oversubscribed soak completed zero scheduled requests")
		}
		if st.Rejected.Load() == 0 {
			return errors.New("oversubscribed soak never shed load — queue/clients too generous to prove backpressure")
		}
	}

	// Progress hygiene: all soak-owned goroutines (connection handlers,
	// client read loops, stalled sleepers) must unwind. Injected stalls
	// sleep tens of milliseconds, so poll with a settle window.
	leakDeadline := time.Now().Add(5 * time.Second)
	gN := runtime.NumGoroutine()
	for gN > g0 && time.Now().Before(leakDeadline) {
		time.Sleep(20 * time.Millisecond)
		gN = runtime.NumGoroutine()
	}
	if gN > g0 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "--- goroutine dump ---\n%s\n", buf[:n])
		dumpTrace()
		return fmt.Errorf("goroutine leak: %d before soak, %d after shutdown", g0, gN)
	}

	hist := rec.History()
	start := time.Now()
	res := histcheck.CheckWithLimit(hist, limit)
	fmt.Printf("nztm-soak: checked %d ops in %d partitions (%d states visited) in %v\n",
		res.Ops, res.Partitions, res.Visited, time.Since(start).Round(time.Millisecond))
	if !res.Ok {
		dumpTrace()
		if res.Capped {
			return fmt.Errorf("linearizability check exhausted its %d-state budget (rerun with -rate lower or -limit higher): %v", limit, res.Violation)
		}
		return fmt.Errorf("history is NOT linearizable: %v", res.Violation)
	}
	return nil
}

// soakClient drives one connection until deadline: randomized GET/PUT/CAS/
// DELETE singles and occasional two-key batches over a clique-partitioned
// key space, retrying budget-exhausted responses and reconnecting (and
// recording the in-flight request as lost) when the connection dies.
func soakClient(id int, addr string, seed uint64, keys, rate int, deadline time.Time, rec *histcheck.Recorder) {
	rng := newWorkloadRNG(seed, id)
	policy := server.RetryPolicy{MaxAttempts: 8, Base: time.Millisecond, Max: 50 * time.Millisecond}
	lastSeen := make(map[string][]byte) // most recent value observed per key

	cl := redial(addr, deadline)
	if cl == nil {
		return
	}
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()

	var interval time.Duration
	if rate > 0 {
		interval = time.Second / time.Duration(rate)
	}
	next := time.Now()
	for seq := 0; time.Now().Before(deadline); seq++ {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		ops := randomOps(rng, id, seq, keys, lastSeen)
		p := rec.Begin(id, ops)
		results, err := cl.DoRetry(ops, policy)
		switch {
		case err == nil:
			p.Done(results)
			observe(lastSeen, ops, results)
		case errors.Is(err, kv.ErrBudget), errors.Is(err, server.ErrOverloaded):
			// The server guarantees budget-exhausted and admission-shed
			// requests had no effect, so they constrain nothing.
			p.Discard()
		default:
			// Connection death (possibly an injected reset): the request's
			// outcome is unknown. Record it as lost and reconnect.
			p.Lost()
			cl.Close()
			cl = redial(addr, deadline)
			if cl == nil {
				return
			}
		}
	}
}

// redial connects with short retries until deadline; nil when it expires.
func redial(addr string, deadline time.Time) *server.Client {
	for time.Now().Before(deadline) {
		cl, err := server.Dial(addr)
		if err == nil {
			return cl
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// randomOps builds the next request. Keys live in cliques of 4 and batches
// only ever pair keys within one clique, so the recorded history partitions
// into per-clique groups the checker can search independently.
func randomOps(rng *workloadRNG, client, seq, keys int, lastSeen map[string][]byte) []kv.Op {
	key := func() string { return fmt.Sprintf("k%03d", rng.intn(keys)) }
	mkOp := func(k string) kv.Op {
		val := []byte(fmt.Sprintf("c%d-%d", client, seq))
		switch r := rng.intn(100); {
		case r < 40:
			return kv.Op{Kind: kv.OpGet, Key: k}
		case r < 65:
			return kv.Op{Kind: kv.OpPut, Key: k, Value: val}
		case r < 90:
			// CAS from the last value this client observed for k (nil
			// expect = create-if-absent): a realistic mix of hits and
			// misses that actually exercises the conditional path.
			return kv.Op{Kind: kv.OpCAS, Key: k, Expect: lastSeen[k], Value: val}
		default:
			return kv.Op{Kind: kv.OpDelete, Key: k}
		}
	}
	if rng.intn(100) < 15 && keys >= 2 {
		// Two-key atomic batch within one clique of 4.
		clique := rng.intn((keys + 3) / 4)
		lo := clique * 4
		hi := lo + 4
		if hi > keys {
			hi = keys
		}
		a := lo + rng.intn(hi-lo)
		b := lo + rng.intn(hi-lo)
		if a == b {
			b = lo + (b-lo+1)%(hi-lo)
		}
		if a == b {
			return []kv.Op{mkOp(fmt.Sprintf("k%03d", a))}
		}
		return []kv.Op{mkOp(fmt.Sprintf("k%03d", a)), mkOp(fmt.Sprintf("k%03d", b))}
	}
	return []kv.Op{mkOp(key())}
}

// observe updates the client's last-seen value map from a successful
// response, feeding future CAS expectations.
func observe(lastSeen map[string][]byte, ops []kv.Op, results []kv.Result) {
	for i := range ops {
		switch ops[i].Kind {
		case kv.OpGet:
			if results[i].Found {
				lastSeen[ops[i].Key] = results[i].Value
			} else {
				delete(lastSeen, ops[i].Key)
			}
		case kv.OpPut:
			lastSeen[ops[i].Key] = ops[i].Value
		case kv.OpCAS:
			if results[i].Found { // CAS hit: the new value is installed
				if ops[i].Value == nil {
					delete(lastSeen, ops[i].Key)
				} else {
					lastSeen[ops[i].Key] = ops[i].Value
				}
			}
		case kv.OpDelete:
			delete(lastSeen, ops[i].Key)
		}
	}
}

// workloadRNG is a splitmix64-seeded xorshift64* stream, one per client,
// so the workload is reproducible from the soak seed alone.
type workloadRNG struct{ x uint64 }

func newWorkloadRNG(seed uint64, client int) *workloadRNG {
	x := seed ^ 0x9e3779b97f4a7c15
	for i := 0; i <= client; i++ {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	if x == 0 {
		x = 0x2545f4914f6cdd1d
	}
	return &workloadRNG{x: x}
}

func (r *workloadRNG) next() uint64 {
	x := r.x
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.x = x
	return x * 0x2545f4914f6cdd1d
}

func (r *workloadRNG) intn(n int) int {
	return int(r.next() % uint64(n))
}
