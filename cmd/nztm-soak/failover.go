// Failover soak (-failover): the replication analogue of the crash
// soak. The parent runs a 3-node cluster of nztm-server processes
// (one primary, two bounded-staleness read replicas), drives load
// through the replica-aware cluster client, and repeatedly SIGKILLs
// the current primary mid-load. After every kill it requires
//
//   - automatic promotion: a follower takes over (fresh epoch) and
//     writes flow again without operator action;
//   - no acked write lost: every write acknowledged before the kill
//     reads back through the new primary (or is superseded by a later
//     admissible write), verified with the crash soak's key model and,
//     at the end, full cross-failover linearizability via histcheck;
//   - bounded-staleness reads hold: replica reads carrying the
//     client's read-your-writes token never return state older than
//     the client's last acknowledged write;
//   - the deposed primary is provably fenced: after it restarts (as a
//     follower of the new primary, resyncing its possibly-diverged
//     tail), a write sent directly to it must be refused with
//     StatusNotPrimary, never acknowledged.
//
// The killed node rejoins each round via snapshot resync, so the
// bootstrap/catch-up path is exercised ≥ -kills times per run.
//
// After the kill schedule, -partitions split-brain episodes run: the
// current primary is blackholed from both followers (dialer-side, in
// both directions, via each node's /partitionz control endpoint) while
// load continues. The majority side must elect a new primary under a
// strictly higher epoch; the isolated old primary must stop acking
// once its lease lapses (at most one epoch acks during the partition);
// on heal the deposed primary must discover the higher epoch through
// its stepdown probe and fence itself WITHOUT a restart; and the
// cross-partition history must still linearize.
package main

import (
	"fmt"
	"net"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nztm/internal/histcheck"
	"nztm/internal/kv"
	"nztm/internal/repl"
	"nztm/internal/server"
)

// failCfg bundles the -failover mode's knobs.
type failCfg struct {
	bin        string // nztm-server binary ("" = go build it)
	seed       uint64
	kills      int // primary SIGKILLs to survive
	partitions int // split-brain partition episodes after the kills
	shards     int
	buckets    int
	keys       int // keys per worker
	workers    int
	limit      int // linearizability search budget
}

// failNode is one cluster member's identity (stable across restarts).
type failNode struct {
	id         int
	kvAddr     string
	replAddr   string
	statszAddr string // debug/control plane (/statsz, /partitionz)
	dir        string
	c          *child
}

// failSoak is the parent-side state. It borrows the crash soak's key
// model (crashSoak) for durability obligations: acked writes must
// survive, severed writes are admissible-but-optional.
type failSoak struct {
	cfg   failCfg
	cs    *crashSoak // model + history recorder, reused verbatim
	nodes []*failNode
	cl    *repl.Cluster

	staleReads atomic.Uint64 // replica reads that violated the RYW bound
	fenced     int           // deposed primaries proven to refuse writes
	promotions int           // observed primary handovers
}

// pickFreeAddr reserves a loopback port (tiny reuse race; the soak
// retries startup once if a bind collides).
func pickFreeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// startFailNode boots one cluster member. replicateFrom is the
// replication address to follow ("" = start as primary).
func (fs *failSoak) startFailNode(n *failNode, replicateFrom string) error {
	args := []string{
		"-addr", n.kvAddr, "-statsz", n.statszAddr, "-system", "nzstm",
		"-shards", fmt.Sprint(fs.cfg.shards), "-buckets", fmt.Sprint(fs.cfg.buckets),
		"-threads", "4", "-drain", "5s",
		"-data-dir", n.dir,
		"-fsync", "interval", "-fsync-interval", "10ms", "-snapshot-every", "100ms",
		"-repl-addr", n.replAddr,
		"-node-id", fmt.Sprint(n.id),
		"-repl-ack", "one",
		"-heartbeat-every", "20ms", "-lease-timeout", "120ms",
		"-max-read-wait", "2s",
		"-replicate-from", replicateFrom,
	}
	var peers []string
	for _, p := range fs.nodes {
		if p.id != n.id {
			peers = append(peers, p.replAddr)
		}
	}
	args = append(args, "-peers", joinComma(peers))
	c := &child{
		cmd:     exec.Command(fs.cfg.bin, args...),
		exitCh:  make(chan error, 1),
		readyCh: make(chan struct{}),
	}
	c.cmd.Stdout = &lineWriter{c: c}
	c.cmd.Stderr = &lineWriter{c: c}
	if err := c.cmd.Start(); err != nil {
		return fmt.Errorf("start node %d: %w", n.id, err)
	}
	go func() { c.exitCh <- c.cmd.Wait() }()
	select {
	case <-c.readyCh:
		n.c = c
		return nil
	case err := <-c.exitCh:
		return fmt.Errorf("node %d exited before ready (%v):\n%s", n.id, err, c.dumpTail())
	case <-time.After(20 * time.Second):
		c.kill()
		<-c.exitCh
		return fmt.Errorf("node %d not ready after 20s:\n%s", n.id, c.dumpTail())
	}
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// nodeByKVAddr maps a client address back to its node.
func (fs *failSoak) nodeByKVAddr(addr string) *failNode {
	for _, n := range fs.nodes {
		if n.kvAddr == addr {
			return n
		}
	}
	return nil
}

// waitPrimary blocks until the cluster client can complete a write,
// returning the primary's client address.
func (fs *failSoak) waitPrimary(timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		ops := []kv.Op{{Kind: kv.OpPut, Key: "probe-primary", Value: []byte("p")}}
		p := fs.cs.rec.Begin(fs.cfg.workers+1, ops)
		if res, clean, err := fs.cl.WriteChecked(ops); err == nil {
			if clean {
				p.Done(res)
			} else {
				p.Lost() // duplicate execution possible: results untrusted
			}
			fs.cs.ack(ops)
			if addr := fs.cl.Primary(); addr != "" {
				return addr, nil
			}
		} else {
			p.Lost()
			fs.cs.markLost(ops)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no primary emerged within %v", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// loadRound drives cluster-client load (writes to the primary, RYW
// token reads on replicas) until stop closes. Severed writes are
// recorded as lost; replica reads are checked against the key model —
// a read-your-writes violation is counted, not just logged.
func (fs *failSoak) loadRound(iter int, stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for w := 0; w < fs.cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newWorkloadRNG(fs.cfg.seed+uint64(iter)*131, w)
			key := func(i int) string { return fmt.Sprintf("w%d-k%02d", w, i) }
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				val := []byte(fmt.Sprintf("w%d.%d.%d", w, iter, seq))
				k := rng.intn(fs.cfg.keys)
				r := rng.intn(100)
				if r < 30 {
					// Replica read of an owned key under the client's token:
					// must never be older than the last acked write.
					ops := []kv.Op{{Kind: kv.OpGet, Key: key(k)}}
					res, err := fs.cl.Read(ops)
					if err != nil {
						continue // reads carry no durability obligation
					}
					fs.cs.mu.Lock()
					m := fs.cs.modelFor(key(k))
					if !m.admissible(res[0].Found, res[0].Value) {
						fs.staleReads.Add(1)
						fmt.Fprintf(os.Stderr, "nztm-soak: STALE replica read: key %s got %v; lastAcked=%v base=%v lost=%v\n",
							key(k), effect{del: !res[0].Found, val: string(res[0].Value)},
							m.lastAcked, m.base, m.lost)
					}
					fs.cs.mu.Unlock()
					continue
				}
				var ops []kv.Op
				switch {
				case r < 40:
					ops = []kv.Op{
						{Kind: kv.OpPut, Key: key(k &^ 1), Value: val},
						{Kind: kv.OpPut, Key: key(k | 1), Value: val},
					}
				case r < 55:
					ops = []kv.Op{{Kind: kv.OpDelete, Key: key(k)}}
				default:
					ops = []kv.Op{{Kind: kv.OpPut, Key: key(k), Value: val}}
				}
				p := fs.cs.rec.Begin(w, ops)
				res, clean, err := fs.cl.WriteChecked(ops)
				switch {
				case err == nil && clean:
					p.Done(res)
					fs.cs.ack(ops)
				case err == nil:
					// Acked, but an earlier attempt died mid-flight and may
					// have executed too: the effect is durable (the model
					// holds it as acked) but the results may observe the
					// duplicate, so the history records outcome-unknown.
					p.Lost()
					fs.cs.ack(ops)
				default:
					// Retries exhausted mid-failover: outcome unknown.
					p.Lost()
					fs.cs.markLost(ops)
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}
	return &wg
}

// verifyThroughPrimary reads every key with outstanding obligations
// through the current primary and checks admissibility (then rebases),
// exactly like the crash soak's post-recovery verify.
func (fs *failSoak) verifyThroughPrimary() error {
	addr, err := fs.waitPrimary(15 * time.Second)
	if err != nil {
		return err
	}
	cl, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	verifier := fs.cfg.workers // history client id for verify reads
	for _, k := range fs.cs.touchedKeys() {
		ops := []kv.Op{{Kind: kv.OpGet, Key: k}}
		p := fs.cs.rec.Begin(verifier, ops)
		res, err := cl.Do(ops)
		if err != nil {
			p.Lost()
			return fmt.Errorf("verify read %s through %s: %w", k, addr, err)
		}
		p.Done(res)
		fs.cs.mu.Lock()
		m := fs.cs.modelFor(k)
		if !m.admissible(res[0].Found, res[0].Value) {
			got := effect{del: !res[0].Found, val: string(res[0].Value)}
			detail := fmt.Sprintf("key %s reads as %v after failover; admissible: lastAcked=%v base=%v lost=%v",
				k, got, m.lastAcked, m.base, m.lost)
			fs.cs.mu.Unlock()
			return fmt.Errorf("acknowledged write lost across failover: %s", detail)
		}
		m.rebase(res[0].Found, res[0].Value)
		fs.cs.mu.Unlock()
	}
	return nil
}

// proveFenced sends writes directly to the deposed old primary until it
// refuses with StatusNotPrimary — the deposed node must never
// acknowledge a write again. An OKVec ack fails immediately; any other
// status is transient (a lease-lapsed zombie answers StatusLagging
// until its stepdown probe discovers the higher epoch) and retries.
func (fs *failSoak) proveFenced(n *failNode) error {
	var last string
	for i := 0; i < 200; i++ {
		cl, err := server.Dial(n.kvAddr)
		if err != nil {
			last = err.Error()
			time.Sleep(25 * time.Millisecond)
			continue
		}
		_, _, status, msg, err := cl.DoVec(
			[]kv.Op{{Kind: kv.OpPut, Key: "fence-probe", Value: []byte("must-not-land")}},
			&server.Staleness{MaxLagMs: server.NoLagBudget})
		cl.Close()
		if err != nil {
			last = err.Error()
			time.Sleep(25 * time.Millisecond)
			continue
		}
		if status == server.StatusOKVec {
			return fmt.Errorf("deposed node %d ACCEPTED a direct write — fencing failed", n.id)
		}
		if status != server.StatusNotPrimary {
			last = fmt.Sprintf("status %d (%s)", status, msg)
			time.Sleep(25 * time.Millisecond)
			continue
		}
		fs.fenced++
		return nil
	}
	return fmt.Errorf("deposed node %d never refused with StatusNotPrimary: last %s", n.id, last)
}

// partitionCtl drives one node's /partitionz control endpoint.
func (fs *failSoak) partitionCtl(n *failNode, query string) error {
	if _, err := httpText("http://" + n.statszAddr + "/partitionz?" + query); err != nil {
		return fmt.Errorf("partitionz %q on node %d: %w", query, n.id, err)
	}
	return nil
}

// epochOf reads a node's current fencing epoch from its /statsz page.
func (fs *failSoak) epochOf(n *failNode) (uint64, error) {
	body, err := httpText("http://" + n.statszAddr + "/statsz")
	if err != nil {
		return 0, fmt.Errorf("statsz on node %d: %w", n.id, err)
	}
	tok := statszToken(body, "epoch=")
	if tok == "" {
		return 0, fmt.Errorf("node %d statsz has no epoch field", n.id)
	}
	v, err := strconv.ParseUint(tok, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("node %d statsz epoch %q: %w", n.id, tok, err)
	}
	return v, nil
}

// assertNoZombieAck writes directly to the partitioned old primary and
// fails the soak if any write is ACKED — during a partition at most the
// majority-side epoch may acknowledge. Refusals (lease fence) and
// commit-gate errors are the expected outcomes; each probe is recorded
// as outcome-unknown because a gate-timeout write executed locally on
// the zombie before failing (that tail is discarded on resync).
func (fs *failSoak) assertNoZombieAck(victim *failNode) error {
	cl, err := server.Dial(victim.kvAddr)
	if err != nil {
		return nil // not reachable at all: certainly not acking
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		ops := []kv.Op{{Kind: kv.OpPut, Key: "zombie-probe", Value: []byte(fmt.Sprintf("z%d", i))}}
		p := fs.cs.rec.Begin(fs.cfg.workers+2, ops)
		_, _, status, _, err := cl.DoVec(ops, &server.Staleness{MaxLagMs: server.NoLagBudget})
		p.Lost()
		fs.cs.markLost(ops)
		if err != nil {
			return nil // connection died mid-probe: not acking
		}
		if status == server.StatusOKVec {
			return fmt.Errorf("partitioned primary node %d ACKED a direct write — split-brain", victim.id)
		}
	}
	return nil
}

// partitionEpisode blackholes the current primary from both followers,
// requires a majority-side promotion under a higher epoch, proves the
// isolated primary never acks, then heals and requires the deposed
// primary to fence itself via its stepdown probe (no restart).
func (fs *failSoak) partitionEpisode(ep int) error {
	primaryAddr, err := fs.waitPrimary(20 * time.Second)
	if err != nil {
		return err
	}
	victim := fs.nodeByKVAddr(primaryAddr)
	if victim == nil {
		return fmt.Errorf("unknown primary address %s", primaryAddr)
	}
	oldEpoch, err := fs.epochOf(victim)
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	wg := fs.loadRound(1000+ep, stop)
	fail := func(err error) error {
		close(stop)
		wg.Wait()
		return err
	}
	time.Sleep(time.Duration(100+int(fs.cfg.seed+uint64(ep)*53)%150) * time.Millisecond)

	// Split-brain: blackhole the primary's replication traffic in both
	// directions, on the followers' dialers AND the primary's own (its
	// probe polls must fail too, so it zombies until heal).
	for _, n := range fs.nodes {
		if n == victim {
			continue
		}
		if err := fs.partitionCtl(n, "op=block&dir=both&peer="+url.QueryEscape(victim.replAddr)); err != nil {
			return fail(err)
		}
		if err := fs.partitionCtl(victim, "op=block&dir=both&peer="+url.QueryEscape(n.replAddr)); err != nil {
			return fail(err)
		}
	}

	// The majority side must elect a new primary under a higher epoch.
	newAddr, err := fs.waitPrimary(20 * time.Second)
	if err != nil {
		return fail(fmt.Errorf("no promotion while node %d is partitioned: %w", victim.id, err))
	}
	if newAddr == primaryAddr {
		return fail(fmt.Errorf("partitioned primary %s still acks cluster writes", primaryAddr))
	}
	fs.promotions++
	newPrimary := fs.nodeByKVAddr(newAddr)
	newEpoch, err := fs.epochOf(newPrimary)
	if err != nil {
		return fail(err)
	}
	if newEpoch <= oldEpoch {
		return fail(fmt.Errorf("promotion without epoch advance: %d -> %d", oldEpoch, newEpoch))
	}

	// At most one epoch acks during the partition: the isolated old
	// primary must refuse (or fail) every direct write.
	if err := fs.assertNoZombieAck(victim); err != nil {
		return fail(err)
	}

	// Heal. The deposed primary's stepdown probe must now reach a peer,
	// discover the higher epoch, and fence the node WITHOUT a restart.
	for _, n := range fs.nodes {
		if err := fs.partitionCtl(n, "op=healall"); err != nil {
			return fail(err)
		}
	}
	if err := fs.proveFenced(victim); err != nil {
		return fail(err)
	}

	close(stop)
	wg.Wait()
	// Cross-partition obligations: every write acked by either epoch
	// must read back through the current primary.
	return fs.verifyThroughPrimary()
}

// runFailover is the -failover entry point.
func runFailover(cfg failCfg) error {
	cleanups := []string{}
	if cfg.bin == "" {
		tmp, err := os.MkdirTemp("", "nztm-failover-bin-")
		if err != nil {
			return err
		}
		cleanups = append(cleanups, tmp)
		cfg.bin = filepath.Join(tmp, "nztm-server")
		out, err := exec.Command("go", "build", "-o", cfg.bin, "nztm/cmd/nztm-server").CombinedOutput()
		if err != nil {
			return fmt.Errorf("building nztm-server (pass -server-bin to skip): %v\n%s", err, out)
		}
	}

	fs := &failSoak{
		cfg: cfg,
		cs:  &crashSoak{cfg: crashCfg{workers: cfg.workers, keys: cfg.keys}, rec: histcheck.NewRecorder(), model: make(map[string]*keyModel)},
	}
	for i := 0; i < 3; i++ {
		kvAddr, err := pickFreeAddr()
		if err != nil {
			return err
		}
		replAddr, err := pickFreeAddr()
		if err != nil {
			return err
		}
		statszAddr, err := pickFreeAddr()
		if err != nil {
			return err
		}
		dir, err := os.MkdirTemp("", fmt.Sprintf("nztm-failover-n%d-", i))
		if err != nil {
			return err
		}
		cleanups = append(cleanups, dir)
		fs.nodes = append(fs.nodes, &failNode{id: i, kvAddr: kvAddr, replAddr: replAddr, statszAddr: statszAddr, dir: dir})
	}
	fmt.Printf("nztm-soak: failover mode: %d kills + %d partitions, seed=%d (%d shards, %d workers × %d keys)\n",
		cfg.kills, cfg.partitions, cfg.seed, cfg.shards, cfg.workers, cfg.keys)

	// Node 0 seeds the cluster as primary; 1 and 2 follow it.
	if err := fs.startFailNode(fs.nodes[0], ""); err != nil {
		return err
	}
	for i := 1; i < 3; i++ {
		if err := fs.startFailNode(fs.nodes[i], fs.nodes[0].replAddr); err != nil {
			return err
		}
	}
	defer func() {
		for _, n := range fs.nodes {
			if n.c != nil {
				n.c.kill()
				n.c.reap(2 * time.Second)
			}
		}
	}()

	var addrs []string
	for _, n := range fs.nodes {
		addrs = append(addrs, n.kvAddr)
	}
	cl, err := repl.DialCluster(repl.ClusterConfig{Addrs: addrs, MaxLagMs: server.NoLagBudget, RetryFor: 10 * time.Second})
	if err != nil {
		return err
	}
	fs.cl = cl
	defer cl.Close()

	start := time.Now()
	for kill := 0; kill < cfg.kills; kill++ {
		primaryAddr, err := fs.waitPrimary(20 * time.Second)
		if err != nil {
			return fmt.Errorf("kill %d: %w", kill, err)
		}
		victim := fs.nodeByKVAddr(primaryAddr)
		if victim == nil {
			return fmt.Errorf("kill %d: unknown primary address %s", kill, primaryAddr)
		}

		stop := make(chan struct{})
		wg := fs.loadRound(kill, stop)
		time.Sleep(time.Duration(150+int(fs.cfg.seed+uint64(kill)*37)%200) * time.Millisecond)

		// SIGKILL the primary mid-load.
		victim.c.kill()
		victim.c.reap(2 * time.Second)
		victim.c = nil

		// A follower must promote itself and take writes.
		newAddr, err := fs.waitPrimary(20 * time.Second)
		if err != nil {
			close(stop)
			wg.Wait()
			return fmt.Errorf("kill %d: no promotion after killing node %d: %w", kill, victim.id, err)
		}
		if newAddr == primaryAddr {
			close(stop)
			wg.Wait()
			return fmt.Errorf("kill %d: writes still acked by the killed primary %s", kill, primaryAddr)
		}
		fs.promotions++
		newPrimary := fs.nodeByKVAddr(newAddr)

		// Restart the victim as a follower of the new primary; it rejoins
		// via snapshot resync (its tail may have diverged).
		if err := fs.startFailNode(victim, newPrimary.replAddr); err != nil {
			close(stop)
			wg.Wait()
			return fmt.Errorf("kill %d: restart node %d: %w", kill, victim.id, err)
		}
		// Fencing: the deposed primary must refuse direct writes.
		if err := fs.proveFenced(victim); err != nil {
			close(stop)
			wg.Wait()
			return fmt.Errorf("kill %d: %w", kill, err)
		}

		close(stop)
		wg.Wait()

		if (kill+1)%10 == 0 || kill+1 == cfg.kills {
			if err := fs.verifyThroughPrimary(); err != nil {
				return fmt.Errorf("kill %d: %w", kill, err)
			}
			fmt.Printf("nztm-soak: kill %d/%d: %d acked, %d lost, %d fenced, %d stale reads, %v elapsed\n",
				kill+1, cfg.kills, fs.cs.acked.Load(), fs.cs.lost.Load(),
				fs.fenced, fs.staleReads.Load(), time.Since(start).Round(time.Millisecond))
		}
	}

	// Split-brain schedule: partition the primary away instead of
	// killing it. Both sides keep running the whole time.
	for ep := 0; ep < cfg.partitions; ep++ {
		if err := fs.partitionEpisode(ep); err != nil {
			return fmt.Errorf("partition %d: %w", ep, err)
		}
		fmt.Printf("nztm-soak: partition %d/%d healed: %d acked, %d lost, %d fenced, %d stale reads, %v elapsed\n",
			ep+1, cfg.partitions, fs.cs.acked.Load(), fs.cs.lost.Load(),
			fs.fenced, fs.staleReads.Load(), time.Since(start).Round(time.Millisecond))
	}

	if err := fs.verifyThroughPrimary(); err != nil {
		return err
	}
	if fs.staleReads.Load() != 0 {
		return fmt.Errorf("%d replica reads violated the read-your-writes bound", fs.staleReads.Load())
	}
	if want := cfg.kills + cfg.partitions; fs.fenced != want {
		return fmt.Errorf("only %d/%d deposed primaries proven fenced", fs.fenced, want)
	}

	hist := fs.cs.rec.History()
	ckStart := time.Now()
	res := histcheck.CheckWithLimit(hist, cfg.limit)
	fmt.Printf("nztm-soak: failover summary: %d kills, %d partitions, %d promotions, %d fence proofs, %d acked, %d lost, %v elapsed\n",
		cfg.kills, cfg.partitions, fs.promotions, fs.fenced, fs.cs.acked.Load(), fs.cs.lost.Load(),
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("nztm-soak: checked %d ops in %d partitions (%d states visited) in %v\n",
		res.Ops, res.Partitions, res.Visited, time.Since(ckStart).Round(time.Millisecond))
	if !res.Ok {
		if res.Capped {
			return fmt.Errorf("linearizability check exhausted its %d-state budget: %v", cfg.limit, res.Violation)
		}
		return fmt.Errorf("cross-failover history is NOT linearizable: %v", res.Violation)
	}
	for _, d := range cleanups {
		os.RemoveAll(d)
	}
	return nil
}
