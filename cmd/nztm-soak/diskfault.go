// Disk-fault soak (-diskfault): the storage-error analogue of the crash
// soak. The parent execs nztm-server children with the WAL's disk fault
// plane armed (seeded EIO, error-free short writes, ENOSPC, fsync
// failure, open and rename errors at named sites), hammers each child
// with acknowledged writes while the injections land, and verifies that
// every failure either failed fast or degraded the store — never wedged
// a request, never acknowledged a write the disk did not hold:
//
//   - fail-stop fsync: after an injected fsync error the log poisons
//     itself; a direct write probe must be refused promptly and must
//     never be acknowledged (site sync, mode "failed");
//   - ENOSPC degrades, not kills: an injected ENOSPC flips the store
//     read-only; writes shed with StatusReadOnly (provably no effect)
//     while reads keep serving (site write-enospc, mode "read-only");
//   - durability through it all: after each SIGKILL + restart, every
//     write acknowledged before the episode reads back admissibly (the
//     crash soak's key model), and the full cross-restart history stays
//     linearizable under internal/histcheck;
//   - watchdog hygiene: any request that blocks past its window gets
//     the child killed and the iteration fails — an injected I/O error
//     must surface as an error, not a hang.
//
// Recovery always runs against a clean FS (the child arms the plane
// only after its ready line), so boot never sees injected errors; the
// read-site error path is covered by internal/wal's recovery tests.
package main

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nztm/internal/fault"
	"nztm/internal/histcheck"
	"nztm/internal/kv"
)

// diskCfg bundles the -diskfault mode's knobs.
type diskCfg struct {
	bin     string // nztm-server binary ("" = go build it)
	dir     string // data directory ("" = temp, removed on success)
	seed    uint64
	target  int // total disk-fault injections to accumulate
	shards  int
	buckets int
	keys    int // keys per worker
	workers int
	limit   int // linearizability search budget
}

// diskSoak is the parent-side state across all child lifetimes. It
// borrows the crash soak's key model and graceful-shutdown check.
type diskSoak struct {
	cfg diskCfg
	cs  *crashSoak // model + history recorder + graceful path, reused

	injections   [fault.DiskSiteCount]int
	iters        int
	failedModes  int // episodes that reached mode=failed (fsync fail-stop)
	roModes      int // episodes that reached mode=read-only (ENOSPC)
	readonlyShed atomic.Uint64
	writeErrs    atomic.Uint64
}

func (ds *diskSoak) total() int {
	n := 0
	for _, v := range ds.injections {
		n += v
	}
	return n
}

// diskSites is the per-episode rotation. DiskRead is deliberately
// absent: the serving path never ReadAts through the seam (recovery
// does, but children recover disarmed); internal/wal's recovery tests
// own that site.
var diskSites = []fault.DiskSite{
	fault.DiskWriteEIO, fault.DiskWriteShort, fault.DiskWriteENOSPC,
	fault.DiskSync, fault.DiskOpen, fault.DiskRename,
}

// diskProbFor tunes the per-visit firing probability so each episode
// lands a few injections after some acknowledged load: write sites are
// visited once per logged frame, sync once per acked cohort (fsync
// always), open/rename only a few times a second on the snapshot plane.
func diskProbFor(site fault.DiskSite) float64 {
	switch site {
	case fault.DiskSync:
		return 0.002
	case fault.DiskWriteENOSPC:
		return 0.005
	case fault.DiskOpen, fault.DiskRename:
		return 0.25
	default:
		return 0.01
	}
}

// startDiskChild boots one armed child and returns it with its statsz
// address (for mode inspection).
func (ds *diskSoak) startDiskChild(iter int, site fault.DiskSite) (*child, string, error) {
	statszAddr, err := pickFreeAddr()
	if err != nil {
		return nil, "", err
	}
	seed := ds.cfg.seed + uint64(iter)*7919 + 1
	c, err := ds.cs.startChild(
		"-statsz", statszAddr,
		"-fsync", "always", // the fail-stop contract under test is the acked-implies-fsynced one
		"-disk-fault-seed", fmt.Sprint(seed),
		"-disk-fault-sites", site.String(),
		"-disk-fault-prob", fmt.Sprint(diskProbFor(site)),
	)
	if err != nil {
		return nil, "", err
	}
	return c, statszAddr, nil
}

// load drives acknowledged writes while the faults land. Unlike the
// crash soak, the child does not die — it degrades — so workers keep
// going through readonly sheds (clean, no effect) and bail only after a
// run of hard errors (fail-stop mode: everything errs fast by design).
func (ds *diskSoak) load(c *child, iter int, deadline time.Duration) {
	var wg sync.WaitGroup
	stop := time.Now().Add(deadline)
	watchdog := time.AfterFunc(deadline+10*time.Second, c.kill)
	defer watchdog.Stop()
	for w := 0; w < ds.cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newWorkloadRNG(ds.cfg.seed+uint64(iter)*131, w)
			cl, err := dialChild(c)
			if err != nil {
				return
			}
			defer cl.Close()
			// Cap TOTAL (not consecutive) hard errors: once a shard
			// fail-stops, healthy-shard successes would reset a
			// consecutive counter forever, and every hard error is an
			// outcome-unknown op that multiplies the linearizability
			// search space. A dozen per worker per iteration proves the
			// fast-fail behaviour without drowning the checker.
			hardErrs := 0
			for seq := 0; time.Now().Before(stop) && hardErrs < 12; seq++ {
				key := func(i int) string { return fmt.Sprintf("w%d-k%02d", w, i) }
				val := []byte(fmt.Sprintf("w%d.%d.%d", w, iter, seq))
				k := rng.intn(ds.cfg.keys)
				var ops []kv.Op
				switch r := rng.intn(100); {
				case r < 10:
					ops = []kv.Op{
						{Kind: kv.OpPut, Key: key(k &^ 1), Value: val},
						{Kind: kv.OpPut, Key: key(k | 1), Value: val},
					}
				case r < 25:
					ops = []kv.Op{{Kind: kv.OpDelete, Key: key(k)}}
				case r < 40:
					ops = []kv.Op{{Kind: kv.OpGet, Key: key(k)}}
				default:
					ops = []kv.Op{{Kind: kv.OpPut, Key: key(k), Value: val}}
				}
				p := ds.cs.rec.Begin(w, ops)
				res, err := cl.Do(ops)
				switch {
				case err == nil:
					p.Done(res)
					ds.cs.ack(ops)
				case errors.Is(err, kv.ErrBudget):
					p.Discard()
				case errors.Is(err, kv.ErrReadOnly):
					// Shed before execution: provably no effect.
					p.Discard()
					ds.readonlyShed.Add(1)
				default:
					// A write that raced the fault (boundary frame) or a
					// fail-stopped log: outcome unknown, but it came back —
					// fast — instead of wedging.
					p.Lost()
					ds.cs.markLost(ops)
					ds.writeErrs.Add(1)
					hardErrs++
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
}

// fetchMode reads the durability line's mode= token from /statsz.
func fetchMode(statszAddr string) string {
	for i := 0; i < 10; i++ {
		body, err := httpText("http://" + statszAddr + "/statsz")
		if err == nil {
			if m := statszToken(body, "mode="); m != "" {
				return m
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return ""
}

// httpText GETs a URL and returns its body.
func httpText(url string) (string, error) {
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(b)))
	}
	return string(b), nil
}

// statszToken extracts the value following the first "key=" token.
func statszToken(body, key string) string {
	i := strings.Index(body, key)
	if i < 0 {
		return ""
	}
	rest := body[i+len(key):]
	if j := strings.IndexAny(rest, " \n"); j >= 0 {
		rest = rest[:j]
	}
	return rest
}

// probeDegraded asserts the mode-specific contract with one direct
// write: "failed" must refuse promptly and never ack; "read-only" must
// shed with StatusReadOnly. Both are pre-execution refusals, so the
// probe constrains nothing in the history.
func (ds *diskSoak) probeDegraded(c *child, iter int, site fault.DiskSite, mode string) error {
	cl, err := dialChild(c)
	if err != nil {
		return nil // connection refused beats wedged; verified next boot
	}
	defer cl.Close()
	watchdog := time.AfterFunc(10*time.Second, c.kill)
	defer watchdog.Stop()
	ops := []kv.Op{{Kind: kv.OpPut, Key: "degraded-probe", Value: []byte("must-not-land")}}
	p := ds.cs.rec.Begin(ds.cfg.workers+1, ops)
	_, err = cl.Do(ops)
	if err == nil {
		p.Lost()
		ds.cs.markLost(ops)
		return fmt.Errorf("iter %d (site %s): write ACKED while the log is %s — the store lied about durability",
			iter, site, mode)
	}
	p.Discard()
	if mode == "read-only" && !errors.Is(err, kv.ErrReadOnly) {
		return fmt.Errorf("iter %d (site %s): read-only store refused a write with %v, want StatusReadOnly",
			iter, site, err)
	}
	// Reads must keep serving in degraded modes (stable prefixes stay
	// readable); an error is tolerated only if it is fast — the
	// watchdog turns a wedge into a kill, failing the iteration.
	rops := []kv.Op{{Kind: kv.OpGet, Key: "degraded-probe"}}
	rp := ds.cs.rec.Begin(ds.cfg.workers+1, rops)
	if res, rerr := cl.Do(rops); rerr == nil {
		rp.Done(res)
		if res[0].Found {
			return fmt.Errorf("iter %d (site %s): refused write is visible to reads", iter, site)
		}
	} else {
		rp.Lost()
		if mode == "read-only" {
			return fmt.Errorf("iter %d (site %s): read failed on a read-only store: %v", iter, site, rerr)
		}
	}
	return nil
}

// iterate runs one armed child lifetime: boot (clean recovery of the
// previous episode's carnage), verify, load under injection, check the
// degraded-mode contract, SIGKILL, classify the markers.
func (ds *diskSoak) iterate(iter int, site fault.DiskSite) error {
	ds.iters++
	c, statszAddr, err := ds.startDiskChild(iter, site)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		c.kill()
		c.reap(time.Second)
		return fmt.Errorf("iter %d (site %s): %w", iter, site, err)
	}
	verified, err := ds.cs.verify(c)
	if err != nil {
		return fail(err)
	}
	if !verified {
		// The child died during verify: disk faults never kill, so this
		// is either a wedge-kill (watchdog) or a startup crash — fatal.
		return fail(fmt.Errorf("child died during verify:\n%s", c.dumpTail()))
	}
	ds.load(c, iter, 4*time.Second)
	if c.parentKilled.Load() {
		return fail(fmt.Errorf("child wedged under injected I/O errors (watchdog kill):\n%s", c.dumpTail()))
	}
	mode := fetchMode(statszAddr)
	switch mode {
	case "failed":
		ds.failedModes++
	case "read-only":
		ds.roModes++
	}
	if mode == "failed" || mode == "read-only" {
		if err := ds.probeDegraded(c, iter, site, mode); err != nil {
			return fail(err)
		}
		if c.parentKilled.Load() {
			return fail(fmt.Errorf("child wedged answering the degraded-mode probe:\n%s", c.dumpTail()))
		}
	}
	c.kill()
	c.reap(2 * time.Second)
	for _, s := range c.diskMarkers() {
		if p, ok := fault.DiskSiteByName(s); ok {
			ds.injections[p]++
		}
	}
	return nil
}

// runDiskFault is the -diskfault entry point.
func runDiskFault(cfg diskCfg) error {
	cleanups := []string{}
	if cfg.bin == "" {
		tmp, err := os.MkdirTemp("", "nztm-diskfault-bin-")
		if err != nil {
			return err
		}
		cleanups = append(cleanups, tmp)
		cfg.bin = filepath.Join(tmp, "nztm-server")
		out, err := exec.Command("go", "build", "-o", cfg.bin, "nztm/cmd/nztm-server").CombinedOutput()
		if err != nil {
			return fmt.Errorf("building nztm-server (pass -server-bin to skip): %v\n%s", err, out)
		}
	}
	if cfg.dir == "" {
		tmp, err := os.MkdirTemp("", "nztm-diskfault-data-")
		if err != nil {
			return err
		}
		cleanups = append(cleanups, tmp)
		cfg.dir = tmp
	}

	ds := &diskSoak{
		cfg: cfg,
		cs: &crashSoak{
			cfg: crashCfg{
				bin: cfg.bin, dir: cfg.dir, seed: cfg.seed,
				shards: cfg.shards, buckets: cfg.buckets,
				keys: cfg.keys, workers: cfg.workers, limit: cfg.limit,
			},
			rec:   histcheck.NewRecorder(),
			model: make(map[string]*keyModel),
		},
	}
	fmt.Printf("nztm-soak: diskfault mode: target=%d injections, dir=%s, seed=%d (%d shards, %d workers × %d keys)\n",
		cfg.target, cfg.dir, cfg.seed, cfg.shards, cfg.workers, cfg.keys)

	start := time.Now()
	maxIters := cfg.target + 40
	for iter := 0; ds.total() < cfg.target || ds.failedModes == 0 || ds.roModes == 0; iter++ {
		if iter >= maxIters {
			return fmt.Errorf("only %d of %d injections (failed=%d read-only=%d episodes) after %d iterations (per-site: %s)",
				ds.total(), cfg.target, ds.failedModes, ds.roModes, iter, ds.siteSummary())
		}
		if iter > 0 && iter%8 == 0 {
			// The graceful path must still work between fault episodes: an
			// unarmed child recovers, serves, drains on SIGTERM, exits 0.
			if err := ds.cs.gracefulCheck(2000 + iter/8); err != nil {
				return err
			}
		}
		if err := ds.iterate(iter, diskSites[iter%len(diskSites)]); err != nil {
			return err
		}
		if (iter+1)%10 == 0 {
			fmt.Printf("nztm-soak: iter %d: %d/%d injections (%s), modes failed=%d read-only=%d, %d acked, %d lost, %d readonly-shed\n",
				iter+1, ds.total(), cfg.target, ds.siteSummary(),
				ds.failedModes, ds.roModes, ds.cs.acked.Load(), ds.cs.lost.Load(), ds.readonlyShed.Load())
		}
	}
	// Final unarmed boot: verify every obligation once more and prove the
	// graceful path end-to-end after all the carnage.
	if err := ds.cs.gracefulCheck(3000); err != nil {
		return err
	}
	for _, s := range diskSites {
		if ds.injections[s] == 0 {
			return fmt.Errorf("site %s never fired (per-site: %s)", s, ds.siteSummary())
		}
	}
	if ds.readonlyShed.Load() == 0 {
		return errors.New("no write was ever shed with StatusReadOnly — the ENOSPC degraded mode went unexercised")
	}

	hist := ds.cs.rec.History()
	ckStart := time.Now()
	res := histcheck.CheckWithLimit(hist, cfg.limit)
	fmt.Printf("nztm-soak: diskfault summary: %d injections in %d iterations (%s), modes failed=%d read-only=%d, %d acked, %d lost, %d readonly-shed, %d write-errors, %v elapsed\n",
		ds.total(), ds.iters, ds.siteSummary(), ds.failedModes, ds.roModes,
		ds.cs.acked.Load(), ds.cs.lost.Load(), ds.readonlyShed.Load(), ds.writeErrs.Load(),
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("nztm-soak: checked %d ops in %d partitions (%d states visited) in %v\n",
		res.Ops, res.Partitions, res.Visited, time.Since(ckStart).Round(time.Millisecond))
	if !res.Ok {
		if res.Capped {
			return fmt.Errorf("linearizability check exhausted its state budget after %d states: %v", res.Visited, res.Violation)
		}
		return fmt.Errorf("recovered history is NOT linearizable: %v", res.Violation)
	}
	for _, d := range cleanups {
		os.RemoveAll(d)
	}
	return nil
}

func (ds *diskSoak) siteSummary() string {
	parts := make([]string, 0, len(diskSites))
	for _, s := range diskSites {
		parts = append(parts, fmt.Sprintf("%s=%d", s, ds.injections[s]))
	}
	return strings.Join(parts, " ")
}
