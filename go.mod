module nztm

go 1.22
