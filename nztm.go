// Package nztm is a Go reproduction of "NZTM: Nonblocking Zero-indirection
// Transactional Memory" (Tabba, Moir, Goodman, Hay, Wang — SPAA 2009).
//
// It provides an object-based transactional memory programming model (in
// the DSTM style the paper uses) with interchangeable implementations:
//
//   - NZSTM — the paper's primary contribution: a nonblocking STM that
//     stores object data in place and collocates metadata with it, resolving
//     conflicts by *requesting* aborts (AbortNowPlease) and inflating
//     objects into DSTM-style Locators only when an enemy is unresponsive.
//     Read sharing is visible by default; NewNZSTMInvisible selects the
//     invisible-reader discipline the paper also names. Transactions
//     implement the optional Releaser extension (DSTM-style early release).
//   - BZSTM — the blocking variant (§2.2), which waits for acknowledgements
//     forever and never inflates.
//   - SCSS — NZSTM simplified by Single-Compare-Single-Store short hardware
//     transactions (§2.3.2), with no inflation machinery at all.
//   - DSTM — the classic two-level-indirection nonblocking STM (baseline).
//   - DSTM2-SF — the blocking shadow-factory STM (baseline).
//   - LogTM-SE — a model of the unbounded HTM the paper compares against.
//   - NZTM — the hybrid: best-effort HTM with NZSTM fallback (§2.4). The
//     hardware path engages on the simulated machine; elsewhere the hybrid
//     transparently degrades to NZSTM (the HyTM portability story — the
//     Rock processor that would have run it was never shipped).
//   - GlobalLock — the single-global-lock baseline of Figure 4.
//
// Programs write transactions once against the System/Tx interfaces and can
// execute them either as ordinary concurrent Go (NewThread) or on the
// discrete-event simulated CMP (NewMachine/RunSim) that regenerates the
// paper's figures. See DESIGN.md for the architecture and EXPERIMENTS.md
// for the paper-vs-measured results.
package nztm

import (
	"nztm/internal/adaptive"
	"nztm/internal/audit"
	"nztm/internal/bench"
	"nztm/internal/core"
	"nztm/internal/dstm"
	"nztm/internal/dstm2sf"
	"nztm/internal/glock"
	"nztm/internal/hybrid"
	"nztm/internal/logtm"
	"nztm/internal/machine"
	"nztm/internal/tm"
	"nztm/internal/trace"
)

// Core programming-model types (see the tm package for full documentation).
type (
	// Data is the user payload stored in a transactional object.
	Data = tm.Data
	// Object is an opaque transactional object handle.
	Object = tm.Object
	// Tx is an active transaction: Read to open for reading, Update to
	// open for writing (mutations go through a callback).
	Tx = tm.Tx
	// System is one transactional memory implementation.
	System = tm.System
	// Thread carries per-thread transaction context.
	Thread = tm.Thread
	// Stats holds a system's cumulative counters.
	Stats = tm.Stats
	// StatsView is a plain snapshot of Stats.
	StatsView = tm.StatsView
	// Ints is a ready-made Data implementation: a fixed vector of int64.
	Ints = tm.Ints
	// Set is a transactional integer set (linked list, hash table, or
	// red-black tree).
	Set = bench.Set
	// Machine is the discrete-event simulated CMP used for evaluation.
	Machine = machine.Machine
	// Proc is one simulated core (the Thread environment inside RunSim).
	Proc = machine.Proc
)

// NewInts returns an Ints of length n, zero-filled.
func NewInts(n int) *Ints { return tm.NewInts(n) }

// NewThread creates a thread context for ordinary (non-simulated) use.
// Thread IDs must be unique among concurrently running threads and below
// the system's thread cap. Prefer a Registry (see NewNZSTMDynamic), which
// hands IDs out and recycles them safely.
func NewThread(id int) *Thread {
	return tm.NewThread(id, tm.NewRealEnv(id, tm.NewRealWorld()))
}

// Registry hands out numbered thread slots at runtime: Registry.NewThread
// mints a Thread bound to the lowest free slot (blocking at capacity) and
// Thread.Close returns it. Generation counters distinguish a recycled
// slot's new tenant from its predecessor, so threads may come and go freely
// — the dynamic replacement for the fixed thread counts of the paper's
// 16-core chip.
type Registry = tm.Registry

// NewRegistry creates a registry of at most max slots (0 selects the
// default cap). For threads that drive a specific system, prefer the paired
// constructor (NewNZSTMDynamic) so both share one layout address space.
func NewRegistry(max int) *Registry { return tm.NewRegistry(max) }

// NewNZSTMDynamic returns NZSTM wired to a thread registry: instead of a
// fixed thread count, threads acquire slots at runtime (reg.NewThread) and
// release them (Thread.Close) when done. hint sizes the initial reader
// tables (they grow on demand); max bounds concurrently live threads, with
// 0 selecting the default cap.
func NewNZSTMDynamic(hint, max int) (System, *Registry) {
	world := tm.NewRealWorld()
	reg := tm.NewRegistryWorld(max, world)
	cfg := core.DefaultConfig(core.NZ, hint)
	cfg.MaxThreads = reg.Max()
	sys := core.New(world, cfg)
	// Slot churn shows up in the system's Stats (SlotAcquires/SlotReleases).
	reg.BindStats(sys.Stats())
	return sys, reg
}

// Adaptive is the per-shard-group mode-switching facade: transactions run
// optimistically through the wrapped NZSTM by default, and groups the
// controller judges pathologically contended fall back to GlobalLock-style
// short critical sections until they cool. See internal/adaptive and
// DESIGN.md §15.
type Adaptive = adaptive.System

// Execution modes for Adaptive.SwitchMode.
const (
	ModeOptimistic  = adaptive.Optimistic
	ModePessimistic = adaptive.Pessimistic
)

// NewAdaptiveDynamic returns the adaptive facade over registry-wired NZSTM
// (the serving stack's "-system adaptive" configuration). In steady state
// the facade adds one CAS per touched group to NZSTM's allocation-free
// commit path; start a controller (Adaptive.StartController) to let
// contention signals flip group modes at runtime.
func NewAdaptiveDynamic(hint, max int) (*Adaptive, *Registry) {
	world := tm.NewRealWorld()
	reg := tm.NewRegistryWorld(max, world)
	cfg := core.DefaultConfig(core.NZ, hint)
	cfg.MaxThreads = reg.Max()
	sys := adaptive.New(core.New(world, cfg))
	reg.BindStats(sys.Stats())
	return sys, reg
}

// FlightRecorder is the per-thread transaction event tracer: each source
// (thread slot) records begin/read/acquire/conflict/contention-decision/
// abort/commit/inflate/deflate events into a fixed-capacity lock-free ring.
// Bind one to a Registry (Registry.BindRecorder) and every thread it mints
// records automatically; Snapshot, WriteJSON, and Dump expose the newest
// events per source in order. Tracing off (no recorder bound) costs one nil
// check per event site and keeps the hot path allocation-free.
type FlightRecorder = trace.FlightRecorder

// TraceEvent is one recorded flight-recorder event.
type TraceEvent = trace.Event

// NewFlightRecorder creates a flight recorder holding the newest
// perSourceCap events per thread (rounded up to a power of two, minimum 16).
func NewFlightRecorder(perSourceCap int) *FlightRecorder {
	return trace.New(perSourceCap)
}

// NewNZSTM returns the paper's nonblocking zero-indirection STM for
// ordinary concurrent use by up to threads threads.
func NewNZSTM(threads int) System { return core.NewNZSTM(tm.NewRealWorld(), threads) }

// NewBZSTM returns the blocking variant (§2.2).
func NewBZSTM(threads int) System { return core.NewBZSTM(tm.NewRealWorld(), threads) }

// NewSCSS returns the SCSS-simplified variant (§2.3.2).
func NewSCSS(threads int) System { return core.NewSCSS(tm.NewRealWorld(), threads) }

// NewNZSTMInvisible returns NZSTM with invisible read sharing: readers take
// versioned private snapshots and revalidate instead of registering (§2
// names both visible and invisible readers). Reads cause no shared-memory
// traffic; long read sets pay O(n²) incremental validation.
func NewNZSTMInvisible(threads int) System {
	cfg := core.DefaultConfig(core.NZ, threads)
	cfg.Readers = core.InvisibleReaders
	return core.New(tm.NewRealWorld(), cfg)
}

// NewDSTM returns the classic DSTM baseline.
func NewDSTM(threads int) System {
	return dstm.New(tm.NewRealWorld(), dstm.Config{Threads: threads})
}

// NewDSTM2SF returns the blocking shadow-factory baseline.
func NewDSTM2SF(threads int) System {
	return dstm2sf.New(tm.NewRealWorld(), dstm2sf.Config{Threads: threads})
}

// NewLogTMSE returns the LogTM-SE model (usable in real mode too: it is the
// only hardware model whose semantics — stalling with in-place writes — are
// safe under real concurrency).
func NewLogTMSE(threads int) System {
	return logtm.New(tm.NewRealWorld(), logtm.Config{Threads: threads})
}

// NewNZTM returns the hybrid. Outside the simulator it behaves as NZSTM.
func NewNZTM(threads int) System {
	return hybrid.New(tm.NewRealWorld(), hybrid.DefaultConfig(threads))
}

// NewGlobalLock returns the single-global-lock baseline.
func NewGlobalLock() System { return glock.New(tm.NewRealWorld()) }

// Releaser is the optional early-release extension of Tx (DSTM-style): a
// released read stops participating in conflict detection.
type Releaser = tm.Releaser

// NewLinkedList returns a sorted-linked-list set over sys.
func NewLinkedList(sys System) Set { return bench.NewLinkedList(sys) }

// NewLinkedListEarlyRelease returns a sorted-list set using DSTM-style
// hand-over-hand traversal: reads behind a two-node window are released,
// shrinking read sets from O(position) to O(1). Requires a System whose
// transactions implement Releaser (the NZSTM family does).
func NewLinkedListEarlyRelease(sys System) Set { return bench.NewLinkedListEarlyRelease(sys) }

// NewHashTable returns a chained hash set over sys.
func NewHashTable(sys System, buckets int) Set { return bench.NewHashTable(sys, buckets) }

// NewRBTree returns a red-black-tree set over sys.
func NewRBTree(sys System) Set { return bench.NewRBTree(sys) }

// NewMachine creates a simulated CMP with the paper's cache parameters.
func NewMachine(cores int) *Machine {
	return machine.New(machine.DefaultConfig(cores))
}

// NewSimNZSTM builds NZSTM over a simulated machine; likewise the sibling
// constructors below. Threads created inside RunSim charge the cache model.
func NewSimNZSTM(m *Machine, threads int) System { return core.NewNZSTM(m, threads) }

// NewSimNZTM builds the hybrid over a simulated machine, where its
// best-effort hardware path engages.
func NewSimNZTM(m *Machine, threads int) System {
	return hybrid.New(m, hybrid.DefaultConfig(threads))
}

// NewSimLogTMSE builds the LogTM-SE model over a simulated machine.
func NewSimLogTMSE(m *Machine, threads int) System {
	return logtm.New(m, logtm.Config{Threads: threads})
}

// Audited wraps a System with the serializability auditor: committed
// transactions' read/write sets are recorded (object versions are threaded
// through the ordinary Data contract) and CheckAudit verifies offline that
// the execution was serializable.
type Audited = audit.System

// NewAudited wraps sys for auditing. All objects must then be created
// through the returned system.
func NewAudited(sys System) *Audited { return audit.New(sys) }

// CheckAudit verifies an audited execution's records; see the audit package
// for the properties checked (version integrity, read validity, acyclic
// serialization graph).
func CheckAudit(records []audit.Record) error { return audit.Check(records) }

// RunSim executes body as n virtual threads on the simulated machine and
// returns the elapsed simulated cycles. Threads are scheduled one at a time
// in logical time (deterministically for a fixed machine seed), so body may
// use the full TM API but must not block on anything outside the Env.
func RunSim(m *Machine, n int, body func(th *Thread)) uint64 {
	start := m.MaxClock()
	m.Run(n, func(p *machine.Proc) {
		body(tm.NewThread(p.ID(), p))
	})
	return m.MaxClock() - start
}
