package nztm_test

import (
	"fmt"
	"sync"
	"testing"

	"nztm"
)

func ExampleNewNZSTM() {
	sys := nztm.NewNZSTM(1)
	th := nztm.NewThread(0)
	account := sys.NewObject(nztm.NewInts(1))
	_ = sys.Atomic(th, func(tx nztm.Tx) error {
		tx.Update(account, func(d nztm.Data) { d.(*nztm.Ints).V[0] = 100 })
		return nil
	})
	var balance int64
	_ = sys.Atomic(th, func(tx nztm.Tx) error {
		balance = tx.Read(account).(*nztm.Ints).V[0]
		return nil
	})
	fmt.Println(balance)
	// Output: 100
}

func TestFacadeConstructors(t *testing.T) {
	systems := []nztm.System{
		nztm.NewNZSTM(2), nztm.NewBZSTM(2), nztm.NewSCSS(2),
		nztm.NewDSTM(2), nztm.NewDSTM2SF(2), nztm.NewLogTMSE(2),
		nztm.NewNZTM(2), nztm.NewGlobalLock(),
	}
	for _, sys := range systems {
		t.Run(sys.Name(), func(t *testing.T) {
			th := nztm.NewThread(0)
			o := sys.NewObject(nztm.NewInts(1))
			for i := 0; i < 10; i++ {
				if err := sys.Atomic(th, func(tx nztm.Tx) error {
					tx.Update(o, func(d nztm.Data) { d.(*nztm.Ints).V[0]++ })
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			var v int64
			if err := sys.Atomic(th, func(tx nztm.Tx) error {
				v = tx.Read(o).(*nztm.Ints).V[0]
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if v != 10 {
				t.Fatalf("counter = %d", v)
			}
			if sys.Stats().View().Commits == 0 {
				t.Fatal("no commits recorded")
			}
		})
	}
}

func TestFacadeSets(t *testing.T) {
	sys := nztm.NewNZSTM(4)
	for name, set := range map[string]nztm.Set{
		"list": nztm.NewLinkedList(sys),
		"hash": nztm.NewHashTable(sys, 32),
		"tree": nztm.NewRBTree(sys),
	} {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := nztm.NewThread(id)
					for k := int64(0); k < 50; k++ {
						key := int64(id)*100 + k
						if ok, err := set.Insert(th, key); err != nil || !ok {
							t.Errorf("insert(%d) = %v, %v", key, ok, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			snap, err := set.Snapshot(nztm.NewThread(0))
			if err != nil {
				t.Fatal(err)
			}
			if len(snap) != 200 {
				t.Fatalf("set holds %d keys, want 200", len(snap))
			}
		})
	}
}

func TestFacadeSimulation(t *testing.T) {
	m := nztm.NewMachine(4)
	sys := nztm.NewSimNZTM(m, 4)
	o := sys.NewObject(nztm.NewInts(1))
	cycles := nztm.RunSim(m, 4, func(th *nztm.Thread) {
		for i := 0; i < 25; i++ {
			if err := sys.Atomic(th, func(tx nztm.Tx) error {
				tx.Update(o, func(d nztm.Data) { d.(*nztm.Ints).V[0]++ })
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if cycles == 0 {
		t.Fatal("no simulated time elapsed")
	}
	var v int64
	nztm.RunSim(m, 1, func(th *nztm.Thread) {
		_ = sys.Atomic(th, func(tx nztm.Tx) error {
			v = tx.Read(o).(*nztm.Ints).V[0]
			return nil
		})
	})
	if v != 100 {
		t.Fatalf("counter = %d, want 100", v)
	}
	if sys.Stats().View().HWCommits == 0 {
		t.Fatal("simulated hybrid never used hardware")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() uint64 {
		m := nztm.NewMachine(3)
		sys := nztm.NewSimNZSTM(m, 3)
		set := nztm.NewRBTree(sys)
		return nztm.RunSim(m, 3, func(th *nztm.Thread) {
			for k := int64(0); k < 30; k++ {
				if _, err := set.Insert(th, int64(th.ID)*1000+k*7%100); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("simulation not deterministic: %d vs %d cycles", a, b)
	}
}

func TestFacadeInvisibleReaders(t *testing.T) {
	sys := nztm.NewNZSTMInvisible(4)
	set := nztm.NewRBTree(sys)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := nztm.NewThread(id)
			for k := int64(0); k < 60; k++ {
				if _, err := set.Insert(th, int64(id)*100+k%40); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap, err := set.Snapshot(nztm.NewThread(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 160 {
		t.Fatalf("set holds %d keys, want 160", len(snap))
	}
}

func TestFacadeAudit(t *testing.T) {
	s := nztm.NewAudited(nztm.NewNZSTM(4))
	o := s.NewObject(nztm.NewInts(1))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := nztm.NewThread(id)
			for i := 0; i < 100; i++ {
				if err := s.Atomic(th, func(tx nztm.Tx) error {
					v := tx.Read(o).(*nztm.Ints).V[0]
					tx.Update(o, func(d nztm.Data) { d.(*nztm.Ints).V[0] = v + 1 })
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := nztm.CheckAudit(s.Log()); err != nil {
		t.Fatalf("not serializable: %v", err)
	}
}

// TestAtomicRealModeAllocFree is the allocation-regression gate for the
// transaction hot path (run by `make check`): an uncontended read-write
// transaction on NZSTM in real mode must not allocate. Pooled descriptors,
// the backup pool, and the per-descriptor bump arenas make the steady state
// alloc-free; arena refills (one slice per 64 entries) amortise to well
// under one allocation per transaction, hence the < 0.5 threshold rather
// than an exact zero.
func TestAtomicRealModeAllocFree(t *testing.T) {
	// gate measures one configuration's steady-state hot path. The
	// transaction function and update callback are hoisted out of the loop,
	// as a steady-state caller would: the gate measures the library hot
	// path, not per-iteration closure construction in the caller.
	gate := func(t *testing.T, sys nztm.System, reg *nztm.Registry,
		atomic func(th *nztm.Thread, fn func(nztm.Tx) error) error) {
		o := sys.NewObject(nztm.NewInts(4))
		th := reg.NewThread()
		defer th.Close()
		var v int64
		upd := func(d nztm.Data) { d.(*nztm.Ints).V[0] = v + 1 }
		fn := func(tx nztm.Tx) error {
			v = tx.Read(o).(*nztm.Ints).V[0]
			tx.Update(o, upd)
			return nil
		}
		run := func() {
			if err := atomic(th, fn); err != nil {
				t.Fatal(err)
			}
		}
		// Warm the pools and arenas out of the measurement.
		for i := 0; i < 200; i++ {
			run()
		}
		if avg := testing.AllocsPerRun(500, run); avg >= 0.5 {
			t.Errorf("uncontended read-write transaction allocates %.2f allocs/op; want ~0", avg)
		}
	}
	t.Run("nzstm", func(t *testing.T) {
		sys, reg := nztm.NewNZSTMDynamic(4, 0)
		gate(t, sys, reg, sys.Atomic)
	})
	// The adaptive facade in a stable mode must preserve the guarantee: its
	// switch check is one atomic word per touched group, not an allocation.
	t.Run("adaptive-stable-optimistic", func(t *testing.T) {
		sys, reg := nztm.NewAdaptiveDynamic(4, 0)
		gate(t, sys, reg, func(th *nztm.Thread, fn func(nztm.Tx) error) error {
			return sys.AtomicMask(th, 1, fn) // the kv store's single-group shape
		})
	})
	t.Run("adaptive-stable-pessimistic", func(t *testing.T) {
		sys, reg := nztm.NewAdaptiveDynamic(4, 0)
		sys.SetProbeEvery(0) // pure mutex path
		sys.SwitchMode(0, nztm.ModePessimistic)
		gate(t, sys, reg, func(th *nztm.Thread, fn func(nztm.Tx) error) error {
			return sys.AtomicMask(th, 1, fn)
		})
	})
}

// TestTracingAllocGuard is the observability-plane allocation gate (run by
// `make check`): with no flight recorder bound, the hot path must stay
// allocation-free exactly as TestAtomicRealModeAllocFree demands; with
// tracing enabled, recording into the preallocated per-thread ring may cost
// at most 2 allocs/op (in practice 0 — events are atomic stores into a
// fixed ring).
func TestTracingAllocGuard(t *testing.T) {
	for _, tc := range []struct {
		name     string
		tracing  bool
		adaptive bool
		limit    float64
	}{
		{"disabled", false, false, 0.5},
		{"enabled", true, false, 2.0},
		{"disabled-adaptive", false, true, 0.5},
		{"enabled-adaptive", true, true, 2.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var sys nztm.System
			var reg *nztm.Registry
			if tc.adaptive {
				// The facade must not cost the tracing plane its guarantee:
				// stable-mode entry records no events and allocates nothing.
				sys, reg = nztm.NewAdaptiveDynamic(4, 0)
			} else {
				sys, reg = nztm.NewNZSTMDynamic(4, 0)
			}
			if tc.tracing {
				reg.BindRecorder(nztm.NewFlightRecorder(1024))
			}
			o := sys.NewObject(nztm.NewInts(4))
			th := reg.NewThread()
			defer th.Close()
			if tc.tracing && th.Recorder() == nil {
				t.Fatal("registry-minted thread has no recorder despite BindRecorder")
			}
			var v int64
			upd := func(d nztm.Data) { d.(*nztm.Ints).V[0] = v + 1 }
			fn := func(tx nztm.Tx) error {
				v = tx.Read(o).(*nztm.Ints).V[0]
				tx.Update(o, upd)
				return nil
			}
			run := func() {
				if err := sys.Atomic(th, fn); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 200; i++ {
				run()
			}
			if avg := testing.AllocsPerRun(500, run); avg >= tc.limit {
				t.Errorf("tracing %s: %.2f allocs/op, want < %.1f", tc.name, avg, tc.limit)
			}
		})
	}
}

// TestTracingUnderContention drives contended transactions with tracing on
// and checks the recorder captured the conflict story: commits, conflicts,
// and contention-manager decisions, in per-thread order. Run under -race by
// `make check` (race-tracing), this is also the tracing-enabled race gate.
func TestTracingUnderContention(t *testing.T) {
	sys, reg := nztm.NewNZSTMDynamic(4, 0)
	fr := nztm.NewFlightRecorder(4096)
	reg.BindRecorder(fr)
	o := sys.NewObject(nztm.NewInts(1))

	const workers, each = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := reg.NewThread()
			defer th.Close()
			for i := 0; i < each; i++ {
				sys.Atomic(th, func(tx nztm.Tx) error {
					tx.Update(o, func(d nztm.Data) { d.(*nztm.Ints).V[0]++ })
					return nil
				})
			}
		}()
	}
	wg.Wait()

	var total int64
	th := reg.NewThread()
	defer th.Close()
	sys.Atomic(th, func(tx nztm.Tx) error {
		total = tx.Read(o).(*nztm.Ints).V[0]
		return nil
	})
	if total != workers*each {
		t.Fatalf("counter = %d, want %d", total, workers*each)
	}

	commits := 0
	for _, src := range fr.Snapshot() {
		last := uint64(0)
		for _, e := range src.Events {
			if e.Seq <= last {
				t.Fatalf("source %d events out of order: seq %d after %d", src.Source, e.Seq, last)
			}
			last = e.Seq
			if e.Kind.String() == "commit" {
				commits++
			}
		}
	}
	if commits == 0 {
		t.Fatal("no commit events recorded under contention")
	}
	if fr.Count() == 0 {
		t.Fatal("flight recorder is empty")
	}
}
